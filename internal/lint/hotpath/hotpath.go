// Package hotpath implements the jouleslint analyzer that machine-
// enforces the repository's zero-allocation hot paths.
//
// A function annotated with a doc comment line
//
//	//joules:hotpath
//
// declares that it — and everything it transitively calls, per the
// shared call graph — must not allocate: the per-step simulation
// kernels (LoadAt's 3-term dot product, the device batch Step, the
// steady-state chunk codec) hold their benchmark-gated 0 allocs/op
// because nothing on those paths touches the heap, and this analyzer
// keeps that true as the code evolves instead of waiting for an
// allocs/op gate to trip.
//
// Flagged constructs: make of slices/maps/channels, new, address-of
// composite literals, slice and map literals, append to fresh local
// slices, closures that capture variables, go statements, string
// concatenation and string<->[]byte conversions, interface boxing of
// non-pointer-shaped values at call arguments, calls with loose
// variadic arguments, and calls into known-allocating stdlib helpers
// (fmt, errors, regexp, encoding/json, and the allocating parts of
// strings/strconv). Plain struct and array value literals, appends to
// fields and parameters (the repo's amortized-reuse idiom), and calls
// to non-denylisted out-of-unit functions are not flagged.
//
// Cold exits stay exempt so hot functions keep their guardrails: an
// allocation inside panic arguments, inside a return operand of type
// error, or inside a block whose last statement returns or panics (the
// `if err != nil { return fmt.Errorf(...) }` shape) is not part of the
// steady state and is not flagged.
//
// A //jouleslint:ignore hotpath directive on a call site cuts that call
// edge out of the hot region — the annotated caller remains checked,
// the callee is excused with an auditable reason — while the same
// directive on an allocation suppresses just that finding.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/callgraph"
)

// Annotation is the doc-comment marker declaring a hot path root.
const Annotation = "//joules:hotpath"

// name is the analyzer name, named apart from Analyzer so computeSet
// can use it without an initialization cycle.
const name = "hotpath"

// Analyzer flags heap allocations in //joules:hotpath functions and
// their transitive callees.
var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "functions marked //joules:hotpath (and their callees) must be allocation-free",
	Requires: []*analysis.Fact{callgraph.Fact, SetFact},
	Run:      run,
}

// SetFact is the memoized hot-function set: the //joules:hotpath roots
// plus everything reachable from them through non-ignored call edges.
var SetFact = &analysis.Fact{
	Name:    "hotpathset",
	Compute: computeSet,
}

// Set is SetFact's value.
type Set struct {
	// Graph is the unit call graph the set was derived from.
	Graph *callgraph.Graph
	// Reached maps every hot function to its discovery edge (roots map
	// to a zero edge), exactly as callgraph.Reach returns it.
	Reached map[*types.Func]callgraph.Edge
}

// computeSet finds the annotated roots and walks the call graph,
// cutting edges whose call site carries a hotpath ignore directive.
func computeSet(u *analysis.Unit) (any, error) {
	gv, err := u.FactOf(callgraph.Fact)
	if err != nil {
		return nil, err
	}
	g := gv.(*callgraph.Graph)
	ignored := analysis.IgnoredLines{}
	var roots []*types.Func
	for _, up := range u.Packages {
		for file, lines := range analysis.IgnoredLinesFor(u.Fset, up.Files, name) {
			ignored[file] = lines
		}
		if up.TypesInfo == nil {
			continue
		}
		for _, f := range up.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if c.Text == Annotation || strings.HasPrefix(c.Text, Annotation+" ") {
						if fn, ok := up.TypesInfo.Defs[fd.Name].(*types.Func); ok {
							roots = append(roots, fn)
						}
						break
					}
				}
			}
		}
	}
	reached := g.Reach(roots, func(e callgraph.Edge) bool {
		return ignored.Has(u.Fset.Position(e.Pos))
	})
	return &Set{Graph: g, Reached: reached}, nil
}

// run checks every hot function declared in the pass's package.
func run(pass *analysis.Pass) error {
	sv, err := pass.Unit.FactOf(SetFact)
	if err != nil {
		return err
	}
	set := sv.(*Set)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if _, hot := set.Reached[fn]; !hot {
				continue
			}
			checkBody(pass, fd, chainSuffix(set, fn))
		}
	}
	return nil
}

// chainSuffix renders how a non-root function became hot, e.g.
// " (hot via (*Network).LoadAt -> loadAt)"; empty for roots.
func chainSuffix(set *Set, fn *types.Func) string {
	edges := set.Graph.Chain(set.Reached, fn)
	if len(edges) == 0 {
		return ""
	}
	parts := []string{funcLabel(edges[0].Caller)}
	for _, e := range edges {
		parts = append(parts, funcLabel(e.Callee))
	}
	return " (hot via " + strings.Join(parts, " -> ") + ")"
}

// funcLabel renders Name or (Recv).Name.
func funcLabel(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			return "(*" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// checkBody walks one hot function body and reports allocation sites
// outside cold exit paths.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, suffix string) {
	info := pass.TypesInfo
	params := paramVars(info, fd)
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "hot path: "+fmt.Sprintf(format, args...)+suffix)
	}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !cold(info, fd, stack, n) {
			checkNode(info, params, report, n)
		}
		stack = append(stack, n)
		return true
	})
}

// paramVars collects the receiver, parameter, and named-result objects
// of the declaration and every function literal nested in it. (go/types
// puts top-level body locals in the same scope as parameters, so the
// distinction has to come from the syntax.)
func paramVars(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	set := make(map[types.Object]bool)
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					set[obj] = true
				}
			}
		}
	}
	addList(fd.Recv)
	ast.Inspect(fd, func(n ast.Node) bool {
		if ft, ok := n.(*ast.FuncType); ok {
			addList(ft.Params)
			addList(ft.Results)
		}
		return true
	})
	return set
}

// cold reports whether n sits on an exempt cold exit: inside panic
// arguments, inside a return operand of type error, or inside a
// non-body block whose final statement returns or panics.
func cold(info *types.Info, fd *ast.FuncDecl, stack []ast.Node, n ast.Node) bool {
	for i, anc := range stack {
		switch a := anc.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, a, "panic") {
				return true
			}
		case *ast.ReturnStmt:
			operand := n
			if i+1 < len(stack) {
				operand = stack[i+1]
			}
			if expr, ok := operand.(ast.Expr); ok && isErrorType(info.TypeOf(expr)) {
				return true
			}
		case *ast.BlockStmt:
			if a != fd.Body && blockExits(info, a) {
				return true
			}
		}
	}
	return false
}

// blockExits reports whether the block's last statement leaves the
// function (return or panic).
func blockExits(info *types.Info, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			return isBuiltin(info, call, "panic")
		}
	}
	return false
}

// checkNode flags n if it is an allocation site.
func checkNode(info *types.Info, params map[types.Object]bool, report func(token.Pos, string, ...any), n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		checkCall(info, params, report, n)
	case *ast.CompositeLit:
		t := info.TypeOf(n)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			report(n.Pos(), "slice literal allocates")
		case *types.Map:
			report(n.Pos(), "map literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				report(n.Pos(), "address of composite literal allocates")
			}
		}
	case *ast.FuncLit:
		if captures(info, n) {
			report(n.Pos(), "closure capturing variables allocates")
		}
	case *ast.GoStmt:
		report(n.Pos(), "go statement allocates")
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isStringType(info.TypeOf(n)) && info.Types[n].Value == nil {
			report(n.Pos(), "string concatenation allocates")
		}
	}
}

// checkCall classifies one call expression.
func checkCall(info *types.Info, params map[types.Object]bool, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	// Builtins.
	switch {
	case isBuiltin(info, call, "make"):
		switch info.TypeOf(call).Underlying().(type) {
		case *types.Slice:
			report(call.Pos(), "make of slice allocates")
		case *types.Map:
			report(call.Pos(), "make of map allocates")
		case *types.Chan:
			report(call.Pos(), "make of channel allocates")
		}
		return
	case isBuiltin(info, call, "new"):
		report(call.Pos(), "new allocates")
		return
	case isBuiltin(info, call, "append"):
		checkAppend(info, params, report, call)
		return
	}
	// Conversions: string <-> []byte/[]rune copy.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		checkConversion(info, report, call, tv.Type)
		return
	}
	// Known-allocating stdlib callees.
	if callee := callgraph.StaticCallee(info, call); callee != nil {
		if name, denied := deniedCallee(callee); denied {
			report(call.Pos(), "call to %s allocates", name)
			return
		}
	}
	// Signature-driven checks: variadic spreads and interface boxing.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		report(call.Pos(), "call with loose variadic arguments allocates a slice")
	}
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
	}
	for i, arg := range call.Args {
		if i >= fixed {
			break
		}
		if boxes(info, arg, sig.Params().At(i).Type()) {
			report(arg.Pos(), "passing %s as interface %s allocates", info.TypeOf(arg), sig.Params().At(i).Type())
		}
	}
}

// checkAppend flags appends that grow a fresh local slice; appends to
// fields and parameters follow the repo's amortized-reuse idiom and are
// allowed.
func checkAppend(info *types.Info, params map[types.Object]bool, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return
	}
	if v.Parent() == v.Pkg().Scope() {
		return // package-level slice: amortized across steps
	}
	if params[v] {
		return // caller-owned buffer (AppendChunk-style dst)
	}
	report(call.Pos(), "append to local slice %s may allocate; reuse a preallocated buffer", id.Name)
}

// checkConversion flags allocating conversions.
func checkConversion(info *types.Info, report func(token.Pos, string, ...any), call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isStringType(src) && isByteOrRuneSlice(target):
		report(call.Pos(), "string to %s conversion allocates", target)
	case isByteOrRuneSlice(src) && isStringType(target):
		report(call.Pos(), "%s to string conversion allocates", src)
	case types.IsInterface(target) && boxes(info, call.Args[0], target):
		report(call.Pos(), "converting %s to interface %s allocates", src, target)
	}
}

// boxes reports whether passing arg as interface-typed param allocates:
// the param is an interface, the argument is a non-constant concrete
// value that is not pointer-shaped (pointers, maps, channels, and funcs
// fit the interface data word without heap copies).
func boxes(info *types.Info, arg ast.Expr, param types.Type) bool {
	if !types.IsInterface(param) {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Value != nil {
		return false // constants are exempt (small-value caches, static data)
	}
	t := tv.Type
	if t == nil || types.IsInterface(t) {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		// Ints, floats, strings, bools all box through the heap.
		return b.Kind() != types.UntypedNil && b.Kind() != types.UnsafePointer
	}
	return !pointerShaped(t)
}

// pointerShaped mirrors the runtime's direct-interface rule: a value
// whose representation is exactly one pointer word is stored in the
// interface data word with no heap copy. Besides pointers, maps,
// channels, and funcs, that covers one-field structs and one-element
// arrays wrapping such a value — sort.Interface adapter structs holding
// a single pointer are the common hot-path case.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && pointerShaped(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && pointerShaped(u.Elem())
	}
	return false
}

// deniedCallee reports whether the callee is a stdlib helper known to
// allocate, returning its printable name.
func deniedCallee(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := pkg.Path() + "." + fn.Name()
	switch pkg.Path() {
	case "fmt", "errors", "regexp", "encoding/json":
		return name, true
	case "strings":
		switch fn.Name() {
		case "Join", "Repeat", "Split", "SplitN", "Fields", "Replace", "ReplaceAll", "ToUpper", "ToLower", "Map":
			return name, true
		}
	case "strconv":
		if strings.HasPrefix(fn.Name(), "Format") || fn.Name() == "Itoa" || fn.Name() == "Quote" {
			return name, true
		}
	}
	return "", false
}

// captures reports whether the function literal closes over variables
// declared outside it (package-level variables and fields do not count:
// only stack captures force a heap-allocated closure).
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
