package loader

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func TestLoadModulePackage(t *testing.T) {
	res, err := Load(Config{Dir: repoRoot(t)}, "fantasticjoules/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("got %d target packages, want 1", len(res.Packages))
	}
	pkg := res.Packages[0]
	if pkg.PkgPath != "fantasticjoules/internal/units" {
		t.Fatalf("unexpected package path %q", pkg.PkgPath)
	}
	if !pkg.Target {
		t.Fatal("named package not marked as target")
	}
	if pkg.Types.Scope().Lookup("Power") == nil {
		t.Fatal("units.Power not in package scope")
	}
	if pkg.TypesInfo == nil || len(pkg.TypesInfo.Uses) == 0 {
		t.Fatal("target package has no type info")
	}
}

func TestLoadResolvesDeps(t *testing.T) {
	res, err := Load(Config{Dir: repoRoot(t)}, "fantasticjoules/internal/autopower")
	if err != nil {
		t.Fatal(err)
	}
	net := res.Dep("net")
	if net == nil {
		t.Fatal("net not in dependency closure")
	}
	if net.Scope().Lookup("Conn") == nil {
		t.Fatal("net.Conn not found")
	}
	if res.Dep("no/such/package") != nil {
		t.Fatal("Dep invented a package")
	}
}

func TestLoadUnknownPattern(t *testing.T) {
	if _, err := Load(Config{Dir: repoRoot(t)}, "fantasticjoules/internal/nonexistent"); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}
