package loader

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"fantasticjoules/internal/lint/analysis"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func TestLoadModulePackage(t *testing.T) {
	res, err := Load(Config{Dir: repoRoot(t)}, "fantasticjoules/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 1 {
		t.Fatalf("got %d target packages, want 1", len(res.Packages))
	}
	pkg := res.Packages[0]
	if pkg.PkgPath != "fantasticjoules/internal/units" {
		t.Fatalf("unexpected package path %q", pkg.PkgPath)
	}
	if !pkg.Target {
		t.Fatal("named package not marked as target")
	}
	if pkg.Types.Scope().Lookup("Power") == nil {
		t.Fatal("units.Power not in package scope")
	}
	if pkg.TypesInfo == nil || len(pkg.TypesInfo.Uses) == 0 {
		t.Fatal("target package has no type info")
	}
}

func TestLoadResolvesDeps(t *testing.T) {
	res, err := Load(Config{Dir: repoRoot(t)}, "fantasticjoules/internal/autopower")
	if err != nil {
		t.Fatal(err)
	}
	net := res.Dep("net")
	if net == nil {
		t.Fatal("net not in dependency closure")
	}
	if net.Scope().Lookup("Conn") == nil {
		t.Fatal("net.Conn not found")
	}
	if res.Dep("no/such/package") != nil {
		t.Fatal("Dep invented a package")
	}
}

func TestLoadUnknownPattern(t *testing.T) {
	if _, err := Load(Config{Dir: repoRoot(t)}, "fantasticjoules/internal/nonexistent"); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}

// TestUnitFactConcurrent hammers Unit.FactOf from many goroutines: the
// fact must be computed exactly once and every caller must see the same
// value. CI's -race run turns any unlocked access into a failure.
func TestUnitFactConcurrent(t *testing.T) {
	res, err := Load(Config{Dir: repoRoot(t)}, "fantasticjoules/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	unit := res.Unit()
	var computed atomic.Int32
	fact := &analysis.Fact{
		Name: "concurrency-probe",
		Compute: func(u *analysis.Unit) (any, error) {
			computed.Add(1)
			return len(u.Packages), nil
		},
	}
	const workers = 16
	results := make([]any, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = unit.FactOf(fact)
		}(i)
	}
	wg.Wait()
	if got := computed.Load(); got != 1 {
		t.Fatalf("fact computed %d times, want 1", got)
	}
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("worker %d saw %v, worker 0 saw %v", i, results[i], results[0])
		}
	}
}

// TestLoadMultiplePatterns loads two sibling packages at once: both are
// targets with type info, and the unit exposes each in load order.
func TestLoadMultiplePatterns(t *testing.T) {
	res, err := Load(Config{Dir: repoRoot(t)},
		"fantasticjoules/internal/units", "fantasticjoules/internal/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packages) != 2 {
		t.Fatalf("got %d target packages, want 2", len(res.Packages))
	}
	unit := res.Unit()
	if len(unit.Packages) != 2 {
		t.Fatalf("unit exposes %d packages, want 2", len(unit.Packages))
	}
	for i, pkg := range res.Packages {
		if pkg.TypesInfo == nil {
			t.Errorf("target %s has no type info", pkg.PkgPath)
		}
		if unit.Packages[i].PkgPath != pkg.PkgPath {
			t.Errorf("unit package %d = %s, want %s (load order)", i, unit.Packages[i].PkgPath, pkg.PkgPath)
		}
	}
}
