// Package loader type-checks Go packages for the jouleslint analyzers
// without importing golang.org/x/tools.
//
// It shells out to `go list -deps -json` to resolve build patterns — in
// module mode for the real tree, in GOPATH mode for the golden-test
// trees under testdata — then parses and type-checks every package of
// the dependency closure in the topological order go list guarantees,
// resolving imports through each package's ImportMap (which is how the
// vendored GOROOT packages keep their source import paths working).
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"

	"fantasticjoules/internal/lint/analysis"
)

// Config controls where and how packages are resolved.
type Config struct {
	// Dir is the working directory for the go tool (the module root, or
	// a testdata src tree). Empty means the current directory.
	Dir string
	// Env entries are appended to the process environment for the go
	// tool, e.g. GOPATH/GO111MODULE overrides for testdata trees.
	Env []string
}

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path as reported by go list.
	PkgPath string
	// Target reports whether the package was named by the load patterns
	// (rather than pulled in as a dependency); analyzers run only on
	// target packages.
	Target bool
	// Syntax holds the parsed files, in go list's file order.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo holds type-checking results; populated for target
	// packages only.
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Result is a loaded dependency closure.
type Result struct {
	// Fset is the file set shared by every loaded package.
	Fset *token.FileSet
	// Packages holds the closure in dependency order; targets last.
	Packages []*Package

	byPath map[string]*types.Package
}

// Dep returns the type-checked package with the given import path, or
// nil; it is the Pass.Dep hook handed to analyzers.
func (r *Result) Dep(path string) *types.Package { return r.byPath[path] }

// Unit assembles the analysis.Unit for this load: the whole-program view
// the interprocedural facts (call graph, hot-path set) are computed over.
// Target packages appear in load order, sharing the result's file set.
func (r *Result) Unit() *analysis.Unit {
	pkgs := make([]*analysis.UnitPackage, 0, len(r.Packages))
	for _, p := range r.Packages {
		pkgs = append(pkgs, &analysis.UnitPackage{
			PkgPath:   p.PkgPath,
			Files:     p.Syntax,
			Pkg:       p.Types,
			TypesInfo: p.TypesInfo,
		})
	}
	return analysis.NewUnit(r.Fset, pkgs, r.Dep)
}

// Load resolves the patterns and type-checks their dependency closure.
// Type errors in a target package are returned as errors — an analyzer
// run over a package that does not compile would be unreliable — while
// errors in dependencies are tolerated as long as every target still
// type-checks.
func Load(cfg Config, patterns ...string) (*Result, error) {
	pkgs, err := goList(cfg, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Fset: token.NewFileSet(), byPath: make(map[string]*types.Package)}
	for _, lp := range pkgs {
		if lp.ImportPath == "unsafe" {
			res.byPath["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil && !lp.DepOnly && !lp.Standard {
			return nil, fmt.Errorf("loader: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		target := !lp.DepOnly && !lp.Standard
		pkg, err := typecheck(res, lp, target)
		if err != nil {
			if target {
				return nil, err
			}
			continue // broken dependency; targets importing it will fail
		}
		res.byPath[lp.ImportPath] = pkg.Types
		if target {
			res.Packages = append(res.Packages, pkg)
		}
	}
	if len(res.Packages) == 0 {
		return nil, fmt.Errorf("loader: no packages matched %v", patterns)
	}
	return res, nil
}

// goList runs `go list -e -deps -json` and decodes the package stream.
func goList(cfg Config, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	cmd.Env = append(cmd.Env, cfg.Env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decode go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one package against the already-loaded
// closure in res.
func typecheck(res *Result, lp listPackage, target bool) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(res.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	var info *types.Info
	if target {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
	var firstErr error
	conf := types.Config{
		Importer:    mapImporter{res: res, importMap: lp.ImportMap},
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, res.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("loader: type-check %s: %v", lp.ImportPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("loader: type-check %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Target:    target,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// mapImporter resolves imports against the closure loaded so far,
// applying the importing package's ImportMap first (vendored GOROOT
// dependencies appear in source under their unvendored paths).
type mapImporter struct {
	res       *Result
	importMap map[string]string
}

// Import implements types.Importer.
func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.res.byPath[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("loader: package %q not in dependency closure", path)
}
