// Package analysistest runs jouleslint analyzers over golden source
// trees and checks their diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Golden trees live under a package's testdata directory in GOPATH shape
// — testdata/src/<importpath>/*.go — and are loaded in GOPATH mode, so
// the fake fantasticjoules packages they contain (internal/device,
// internal/telemetry, ...) resolve under the same import-path suffixes
// the analyzers scope on in the real tree.
//
// An expectation is a trailing comment of the form
//
//	conn.Read(buf) // want "without a deadline"
//
// where each double-quoted string is a regexp that must match exactly one
// diagnostic reported on that line; diagnostics without a matching want,
// and wants without a matching diagnostic, fail the test.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"fantasticjoules/internal/lint/analysis"
	"fantasticjoules/internal/lint/loader"
)

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// want is one expectation: a regexp attached to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads the patterns from dir's src tree, applies the analyzer to
// every loaded target package, and reports mismatches against the want
// comments through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	res, err := loader.Load(loader.Config{
		Dir: filepath.Join(dir, "src"),
		Env: []string{"GOPATH=" + dir, "GO111MODULE=off", "GOFLAGS=", "GOWORK=off"},
	}, patterns...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	unit := res.Unit()
	for _, f := range a.Requires {
		if _, err := unit.FactOf(f); err != nil {
			t.Fatalf("analysistest: fact %s: %v", f.Name, err)
		}
	}

	var wants []*want
	var diags []analysis.Diagnostic
	var diagFiles []*ast.File
	for _, pkg := range res.Packages {
		wants = append(wants, collectWants(t, res.Fset, pkg.Syntax)...)
		pkgDiags := runAnalyzer(t, res, unit, pkg, a)
		diags = append(diags, pkgDiags...)
		diagFiles = append(diagFiles, pkg.Syntax...)
	}

	for _, d := range diags {
		pos := res.Fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

// runAnalyzer applies a to one package and returns its post-suppression
// diagnostics.
func runAnalyzer(t *testing.T, res *loader.Result, unit *analysis.Unit, pkg *loader.Package, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      res.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Dep:       res.Dep,
		Unit:      unit,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s on %s: %v", a.Name, pkg.PkgPath, err)
	}
	return analysis.FilterSuppressed(res.Fset, pkg.Syntax, a.Name, diags)
}

// collectWants parses the // want comments of a package's files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRE.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: q})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// matchWant consumes the first unmatched want on the diagnostic's line
// whose regexp matches the message.
func matchWant(wants []*want, pos token.Position, message string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
