package lint_test

import (
	"go/token"
	"strings"
	"testing"

	"fantasticjoules/internal/lint"
)

// TestSuiteRegistration pins the multichecker's analyzer set: every
// analyzer is fully populated and names are unique and sorted, so the
// -analyzers flag and the docs stay navigable.
func TestSuiteRegistration(t *testing.T) {
	all := lint.Analyzers()
	want := []string{"deadline", "determinism", "lockdiscipline", "metricname", "unitsafety"}
	if len(all) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	subset, err := lint.ByName([]string{"unitsafety", "deadline"})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(subset) != 2 || subset[0].Name != "unitsafety" || subset[1].Name != "deadline" {
		t.Fatalf("ByName returned wrong subset: %v", subset)
	}
	if _, err := lint.ByName([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("ByName(nope) error = %v, want unknown-analyzer error", err)
	}
}

func TestFindingString(t *testing.T) {
	f := lint.Finding{
		Analyzer: "deadline",
		Pos:      token.Position{Filename: "internal/snmp/client.go", Line: 80, Column: 9},
		Message:  "Write on a conn without a deadline",
	}
	got := f.String()
	want := "internal/snmp/client.go:80:9: [deadline] Write on a conn without a deadline"
	if got != want {
		t.Fatalf("Finding.String() = %q, want %q", got, want)
	}
}
