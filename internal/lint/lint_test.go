package lint_test

import (
	"go/token"
	"strings"
	"testing"

	"fantasticjoules/internal/lint"
)

// TestSuiteRegistration pins the multichecker's analyzer set: every
// analyzer is fully populated and names are unique and sorted, so the
// -analyzers flag and the docs stay navigable.
func TestSuiteRegistration(t *testing.T) {
	all := lint.Analyzers()
	want := []string{"deadline", "determinism", "epochdiscipline", "hotpath", "lockdiscipline", "metricname", "scratchsafety", "unitsafety"}
	if len(all) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		name    string
		in      []string
		want    []string
		wantErr string
	}{
		{name: "subset in request order", in: []string{"unitsafety", "deadline"}, want: []string{"unitsafety", "deadline"}},
		{name: "duplicates collapse", in: []string{"hotpath", "hotpath", "deadline", "hotpath"}, want: []string{"hotpath", "deadline"}},
		{name: "unknown name errors", in: []string{"nope"}, wantErr: "nope"},
		{name: "empty request", in: nil, want: []string{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := lint.ByName(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ByName(%v) error = %v, want error mentioning %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ByName(%v): %v", tc.in, err)
			}
			names := make([]string, len(got))
			for i, a := range got {
				names[i] = a.Name
			}
			if len(names) != len(tc.want) {
				t.Fatalf("ByName(%v) = %v, want %v", tc.in, names, tc.want)
			}
			for i := range names {
				if names[i] != tc.want[i] {
					t.Fatalf("ByName(%v) = %v, want %v", tc.in, names, tc.want)
				}
			}
		})
	}
}

func TestFindingString(t *testing.T) {
	f := lint.Finding{
		Analyzer: "deadline",
		Pos:      token.Position{Filename: "internal/snmp/client.go", Line: 80, Column: 9},
		Message:  "Write on a conn without a deadline",
	}
	got := f.String()
	want := "internal/snmp/client.go:80:9: [deadline] Write on a conn without a deadline"
	if got != want {
		t.Fatalf("Finding.String() = %q, want %q", got, want)
	}
}
