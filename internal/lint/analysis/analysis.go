// Package analysis is a dependency-free re-implementation of the subset
// of golang.org/x/tools/go/analysis that the jouleslint analyzers need.
//
// The repository is intentionally module-dependency-free, so the real
// x/tools framework is not available; this package mirrors its core
// vocabulary — an Analyzer holds a Run function, a Pass hands it one
// type-checked package, diagnostics are reported through the Pass — so
// the analyzers read exactly like stock go/analysis code and could be
// ported to the real framework by swapping an import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //jouleslint:ignore suppression comments.
	Name string
	// Doc is the analyzer's help text; the first line is its summary.
	Doc string
	// Requires lists the whole-unit facts the analyzer reads through
	// Pass.Unit.FactOf. The driver precomputes them (and times them
	// separately), so per-package runs never pay for fact construction.
	Requires []*Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass presents one type-checked package to an analyzer's Run function.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checking results for the package.
	TypesInfo *types.Info
	// Dep returns a transitively imported package by path (nil when the
	// package is not in the import closure). Analyzers use it to look up
	// well-known types such as net.Conn.
	Dep func(path string) *types.Package
	// Unit is the whole load this package belongs to; interprocedural
	// analyzers read shared facts from it via FactOf. Nil under drivers
	// that have no whole-unit view.
	Unit *Unit
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// SuggestedFixes are mechanical rewrites that resolve the finding;
	// `jouleslint -fix` applies the first fix of every finding. Fixes
	// must be correct in isolation — the applier skips edits that
	// overlap an already-applied one.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained rewrite resolving a diagnostic.
type SuggestedFix struct {
	// Message says what the fix does, e.g. "rename to snmp_polls_total".
	Message string
	// TextEdits are the byte-range replacements; they must not overlap.
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// IgnoreDirective is the comment prefix that suppresses a finding on its
// line (or on the line immediately below a comment-only line):
//
//	//jouleslint:ignore determinism -- timing a shard for telemetry only
type IgnoreDirective = string

const ignorePrefix = "//jouleslint:ignore "

// suppressedLines collects, per file, the line numbers whose diagnostics
// the given analyzer name suppresses. A directive suppresses its own line
// and the following line, so it works both as a trailing comment and as a
// comment line above the flagged statement.
func suppressedLines(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				target, _, _ := strings.Cut(rest, "--")
				if strings.TrimSpace(target) != name {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return out
}

// IgnoredLines is the per-file set of source lines a //jouleslint:ignore
// directive covers for one analyzer, keyed by filename then line.
// Interprocedural analyzers consult it at non-diagnostic positions too:
// the hotpath analyzer treats an ignore on a call site as cutting that
// call edge out of the hot region.
type IgnoredLines map[string]map[int]bool

// Has reports whether the position's line is suppressed.
func (ig IgnoredLines) Has(pos token.Position) bool {
	return ig[pos.Filename][pos.Line]
}

// IgnoredLinesFor collects the lines suppressed for the named analyzer
// across the given files. A directive covers its own line and the next,
// exactly as FilterSuppressed honors it.
func IgnoredLinesFor(fset *token.FileSet, files []*ast.File, name string) IgnoredLines {
	return suppressedLines(fset, files, name)
}

// FilterSuppressed drops diagnostics whose position carries a
// //jouleslint:ignore directive for the analyzer. Both the CLI driver and
// the analysistest harness apply it, so suppressions behave identically
// in production runs and in golden tests.
func FilterSuppressed(fset *token.FileSet, files []*ast.File, name string, diags []Diagnostic) []Diagnostic {
	lines := suppressedLines(fset, files, name)
	out := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if lines[pos.Filename][pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// WalkStack traverses every file of the pass in source order, calling fn
// with each node and the stack of its ancestors (outermost first, not
// including the node itself). Returning false skips the node's children.
func WalkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// PkgPathMatches reports whether a package's import path names one of the
// given directories, by suffix: "fantasticjoules/internal/ispnet" matches
// "internal/ispnet", and so do the testdata packages the golden suites
// load under the same relative paths.
func PkgPathMatches(path string, dirs []string) bool {
	for _, d := range dirs {
		if path == d || strings.HasSuffix(path, "/"+d) {
			return true
		}
	}
	return false
}

// FuncFor returns the innermost function boundary (func declaration or
// function literal) in the ancestor stack, or nil when the node is at
// package level. Analyzers use it to keep lexical reasoning — "a deadline
// call earlier in this function" — from leaking across goroutine bodies.
func FuncFor(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// EnclosingFuncDecl returns the innermost *ast.FuncDecl in the stack, or
// nil. Unlike FuncFor it skips function literals: it answers "which
// declared function am I in", for naming-convention checks.
func EnclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
