package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// UnitPackage is one target package of an analyzed load, as the
// whole-program facts see it: syntax, types, and type-checking results.
// It mirrors the per-package fields of Pass, so a fact computation reads
// a package exactly the way an analyzer's Run does.
type UnitPackage struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Files are the package's parsed source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checking results.
	TypesInfo *types.Info
}

// Unit is the whole analyzed load: every target package of one driver
// run, sharing one file set. It is the substrate of interprocedural
// analysis — a Fact computed over the Unit (the call graph, the hot-path
// reachability set, the arena-getter set) sees across package boundaries,
// where a Pass sees one package.
//
// The driver builds one Unit per run and hands it to every Pass; facts
// are computed once and memoized, so ten analyzers requiring the call
// graph pay for one construction.
type Unit struct {
	// Fset maps token positions to file locations for every package.
	Fset *token.FileSet
	// Packages holds the target packages in load (dependency) order.
	Packages []*UnitPackage
	// Dep returns a transitively imported package by path (nil when the
	// package is not in the import closure), as Pass.Dep does.
	Dep func(path string) *types.Package

	mu        sync.Mutex
	facts     map[*Fact]factEntry
	computing map[*Fact]bool
}

type factEntry struct {
	val any
	err error
}

// Fact is one memoized whole-unit computation, the jouleslint analogue of
// go/analysis result dependencies: an analyzer lists the facts it needs
// in Requires, and FactOf returns the shared, lazily computed value. A
// fact may itself request other facts (the hot-path set requests the call
// graph); cycles are reported as errors.
type Fact struct {
	// Name identifies the fact in errors and in the driver's timing
	// report.
	Name string
	// Compute builds the fact's value for a unit. It runs at most once
	// per unit.
	Compute func(*Unit) (any, error)
}

// NewUnit assembles a unit from already-loaded packages.
func NewUnit(fset *token.FileSet, pkgs []*UnitPackage, dep func(string) *types.Package) *Unit {
	return &Unit{
		Fset:      fset,
		Packages:  pkgs,
		Dep:       dep,
		facts:     make(map[*Fact]factEntry),
		computing: make(map[*Fact]bool),
	}
}

// FactOf returns the memoized value of f for this unit, computing it on
// first request. The driver runs passes sequentially, so a fact computes
// exactly once; a recursive self-request is an error rather than a
// deadlock.
func (u *Unit) FactOf(f *Fact) (any, error) {
	if u == nil {
		return nil, fmt.Errorf("analysis: no unit attached to the pass (fact %q needs a whole-unit driver)", f.Name)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if e, ok := u.facts[f]; ok {
		return e.val, e.err
	}
	if u.computing[f] {
		return nil, fmt.Errorf("analysis: fact %q depends on itself", f.Name)
	}
	u.computing[f] = true
	// Release the lock across Compute so a fact may request other facts
	// (the hot-path set pulls the call graph); the computing set turns a
	// cyclic request into an error instead of a re-entrant deadlock.
	u.mu.Unlock()
	val, err := f.Compute(u)
	u.mu.Lock()
	delete(u.computing, f)
	u.facts[f] = factEntry{val: val, err: err}
	return val, err
}

// PackageFor returns the unit package whose file set contains pos, or
// nil. Interprocedural analyzers use it to map a call-graph node back to
// the syntax tree (and suppression comments) of its home package.
func (u *Unit) PackageFor(pkg *types.Package) *UnitPackage {
	for _, p := range u.Packages {
		if p.Pkg == pkg {
			return p
		}
	}
	return nil
}

// FuncDeclOf resolves a declared function or method object to its
// *ast.FuncDecl and home package within the unit, or (nil, nil) when the
// function is declared outside the unit (a dependency) or has no body.
func (u *Unit) FuncDeclOf(fn *types.Func) (*ast.FuncDecl, *UnitPackage) {
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	up := u.PackageFor(fn.Pkg())
	if up == nil {
		return nil, nil
	}
	for _, f := range up.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if up.TypesInfo.Defs[fd.Name] == fn {
				return fd, up
			}
		}
	}
	return nil, nil
}
