package callgraph_test

import (
	"go/types"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"fantasticjoules/internal/lint/callgraph"
	"fantasticjoules/internal/lint/loader"
)

// loadGraph builds the call graph of the golden tree.
func loadGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	res, err := loader.Load(loader.Config{
		Dir: filepath.Join(dir, "src"),
		Env: []string{"GOPATH=" + dir, "GO111MODULE=off", "GOFLAGS=", "GOWORK=off"},
	}, "example.com/cg/...")
	if err != nil {
		t.Fatal(err)
	}
	g, err := res.Unit().FactOf(callgraph.Fact)
	if err != nil {
		t.Fatal(err)
	}
	return g.(*callgraph.Graph)
}

// funcNamed finds a unit function by its qualified suffix, e.g.
// "cg.Root" or "cg.Fast.Step".
func funcNamed(t *testing.T, g *callgraph.Graph, name string) *types.Func {
	t.Helper()
	for _, fn := range g.Funcs {
		if shortName(fn) == name {
			return fn
		}
	}
	t.Fatalf("no function %q in graph (have %v)", name, names(g.Funcs))
	return nil
}

// shortName renders pkg.Func or pkg.Recv.Method.
func shortName(fn *types.Func) string {
	name := fn.Pkg().Name() + "."
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		name += rt.(*types.Named).Obj().Name() + "."
	}
	return name + fn.Name()
}

func names(fns []*types.Func) []string {
	out := make([]string, len(fns))
	for i, fn := range fns {
		out[i] = shortName(fn)
	}
	return out
}

func TestEdges(t *testing.T) {
	g := loadGraph(t)
	root := funcNamed(t, g, "cg.Root")
	var got []string
	for _, e := range g.Edges(root) {
		s := shortName(e.Callee)
		if e.Dynamic {
			s += " (dynamic)"
		}
		got = append(got, s)
	}
	sort.Strings(got)
	want := []string{
		"cg.Fast.Step",           // concrete method call
		"cg.Fast.Step (dynamic)", // CHA resolution of st.Step()
		"cg.Slow.Step (dynamic)", // CHA resolution of st.Step()
		"cg.direct",
		"cg.indirectValue",
		"cg.leaf", // called from the closure, attributed to Root
		"sub.Helper",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Root edges:\n got %v\nwant %v", got, want)
	}
}

func TestReachability(t *testing.T) {
	g := loadGraph(t)
	root := funcNamed(t, g, "cg.Root")
	reached := g.Reach([]*types.Func{root}, nil)

	var got []string
	for fn := range reached {
		got = append(got, shortName(fn))
	}
	sort.Strings(got)
	want := []string{
		"cg.Fast.Step", "cg.Root", "cg.Slow.Step", "cg.direct",
		"cg.indirectValue", "cg.leaf", "sub.Helper", "sub.clamp",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reachable set:\n got %v\nwant %v", got, want)
	}
	if _, ok := reached[funcNamed(t, g, "cg.unreached")]; ok {
		t.Fatal("unreached should not be reachable from Root")
	}

	// Chain reconstructs the discovery path back to the root.
	clamp := funcNamed(t, g, "sub.clamp")
	var chain []string
	for _, e := range g.Chain(reached, clamp) {
		chain = append(chain, shortName(e.Caller)+"->"+shortName(e.Callee))
	}
	want2 := []string{"cg.Root->sub.Helper", "sub.Helper->sub.clamp"}
	if !reflect.DeepEqual(chain, want2) {
		t.Fatalf("chain to clamp:\n got %v\nwant %v", chain, want2)
	}
}

func TestReachSkipCutsEdges(t *testing.T) {
	g := loadGraph(t)
	root := funcNamed(t, g, "cg.Root")
	reached := g.Reach([]*types.Func{root}, func(e callgraph.Edge) bool {
		return shortName(e.Callee) == "sub.Helper"
	})
	for fn := range reached {
		if strings.HasPrefix(shortName(fn), "sub.") {
			t.Fatalf("cutting every edge into sub.Helper should keep package sub unreachable, but reached %s", shortName(fn))
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	a := loadGraph(t)
	b := loadGraph(t)
	if got, want := names(a.Funcs), names(b.Funcs); !reflect.DeepEqual(got, want) {
		t.Fatalf("Funcs order differs across loads:\n%v\n%v", got, want)
	}
}
