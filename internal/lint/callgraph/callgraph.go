// Package callgraph builds a static call graph over a whole jouleslint
// load, shared by the interprocedural analyzers through the analysis
// Fact mechanism.
//
// The graph has one node per declared function or method in the unit.
// Calls inside function literals are attributed to the enclosing
// declaration — a closure runs on its creator's goroutine-agnostic
// behalf as far as allocation and aliasing discipline are concerned —
// so "everything LoadAt transitively calls" naturally includes the
// bodies of the closures it builds. Call edges are resolved two ways:
//
//   - statically, through the type-checker's Uses/Selections maps, for
//     direct calls and concrete-receiver method calls;
//   - by class-hierarchy analysis for interface method calls: every
//     named non-interface type in the unit whose method set satisfies
//     the interface contributes an edge to its implementation, which is
//     sound for the sim packages because their dynamic types are all
//     declared in-tree.
//
// Calls through function-typed values (fields, parameters, variables)
// produce no edge; analyzers that must be conservative about them can
// inspect call sites themselves. Node and edge order is deterministic
// (package load order, then source order), so reachability walks — and
// therefore diagnostics — are stable across runs.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"fantasticjoules/internal/lint/analysis"
)

// Edge is one resolved call: Caller's body contains a call at Pos that
// may dispatch to Callee. Dynamic marks edges resolved by class-
// hierarchy analysis rather than a direct static reference.
type Edge struct {
	Caller  *types.Func
	Callee  *types.Func
	Pos     token.Pos
	Dynamic bool
}

// Graph is the static call graph of one analyzed unit.
type Graph struct {
	// Funcs lists every declared function and method of the unit in
	// deterministic (package, then source) order.
	Funcs []*types.Func

	out map[*types.Func][]Edge
}

// Edges returns fn's outgoing call edges in source order (nil for
// functions declared outside the unit or without a body).
func (g *Graph) Edges(fn *types.Func) []Edge { return g.out[fn] }

// Reach walks the graph breadth-first from the roots, skipping edges
// for which skip returns true (a nil skip follows every edge), and
// returns the discovery edge of every function reached through at least
// one call. Roots map to a zero Edge; following Caller pointers from
// any reached function's discovery edge reconstructs a call chain back
// to a root. The walk visits roots and edges in order, so the discovery
// edges — and any diagnostics derived from them — are deterministic.
func (g *Graph) Reach(roots []*types.Func, skip func(Edge) bool) map[*types.Func]Edge {
	reached := make(map[*types.Func]Edge, len(roots))
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := reached[r]; ok {
			continue
		}
		reached[r] = Edge{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.out[fn] {
			if _, ok := reached[e.Callee]; ok {
				continue
			}
			if skip != nil && skip(e) {
				continue
			}
			reached[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return reached
}

// Chain reconstructs the call chain from a root to fn as the sequence
// of discovery edges, outermost call first. It returns nil when fn is
// itself a root (or was never reached).
func (g *Graph) Chain(reached map[*types.Func]Edge, fn *types.Func) []Edge {
	var rev []Edge
	for {
		e, ok := reached[fn]
		if !ok || e.Caller == nil {
			break
		}
		rev = append(rev, e)
		fn = e.Caller
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Fact is the memoized whole-unit call graph; analyzers list it in
// Requires and read it with Of.
var Fact = &analysis.Fact{
	Name:    "callgraph",
	Compute: func(u *analysis.Unit) (any, error) { return Build(u), nil },
}

// Of returns the unit's call graph through the fact mechanism.
func Of(pass *analysis.Pass) (*Graph, error) {
	v, err := pass.Unit.FactOf(Fact)
	if err != nil {
		return nil, err
	}
	return v.(*Graph), nil
}

// Build constructs the call graph for a unit directly (tests use it;
// analyzers go through Of so the work is shared).
func Build(u *analysis.Unit) *Graph {
	g := &Graph{out: make(map[*types.Func][]Edge)}
	impls := implementers(u)
	for _, up := range u.Packages {
		if up.TypesInfo == nil {
			continue
		}
		for _, f := range up.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := up.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.Funcs = append(g.Funcs, fn)
				g.out[fn] = collectEdges(up.TypesInfo, impls, fn, fd.Body)
			}
		}
	}
	return g
}

// collectEdges resolves every call in body (including calls inside
// nested function literals) to edges attributed to caller.
func collectEdges(info *types.Info, impls *implSet, caller *types.Func, body *ast.BlockStmt) []Edge {
	var edges []Edge
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if callee, ok := info.Uses[fun].(*types.Func); ok {
				edges = append(edges, Edge{Caller: caller, Callee: callee, Pos: call.Lparen})
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[fun]
			if !ok {
				// Package-qualified call: pkg.F(...).
				if callee, ok := info.Uses[fun.Sel].(*types.Func); ok {
					edges = append(edges, Edge{Caller: caller, Callee: callee, Pos: call.Lparen})
				}
				break
			}
			if sel.Kind() != types.MethodVal {
				break // method expression / field of func type: no static target
			}
			callee, ok := sel.Obj().(*types.Func)
			if !ok {
				break
			}
			if types.IsInterface(sel.Recv()) {
				for _, impl := range impls.lookup(sel.Recv().Underlying().(*types.Interface), callee) {
					edges = append(edges, Edge{Caller: caller, Callee: impl, Pos: call.Lparen, Dynamic: true})
				}
				break
			}
			edges = append(edges, Edge{Caller: caller, Callee: callee, Pos: call.Lparen})
		}
		return true
	})
	return edges
}

// StaticCallee resolves a call's single static target: a direct call, a
// package-qualified call, or a concrete-receiver method call. It
// returns nil for builtins, conversions, function values, and interface
// dispatch. Analyzers share it so their notion of "who is called here"
// matches the graph's.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// implSet indexes the unit's named concrete types for class-hierarchy
// resolution of interface method calls.
type implSet struct {
	types []types.Type // T and *T for every named non-interface type, deterministic order
}

// implementers collects every named non-interface type declared in the
// unit, in package order then scope-name order (Scope.Names sorts).
func implementers(u *analysis.Unit) *implSet {
	s := &implSet{}
	for _, up := range u.Packages {
		if up.Pkg == nil {
			continue
		}
		scope := up.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			s.types = append(s.types, named, types.NewPointer(named))
		}
	}
	return s
}

// lookup returns, for every unit type implementing iface, its concrete
// method corresponding to the interface method m, deduplicated (a
// value-receiver method satisfies the interface through both T and *T).
func (s *implSet) lookup(iface *types.Interface, m *types.Func) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, t := range s.types {
		if !types.Implements(t, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok || seen[fn] {
			continue
		}
		seen[fn] = true
		out = append(out, fn)
	}
	return out
}
