// Package sub provides a cross-package callee for the call-graph
// golden tree.
package sub

// Helper is called from package cg.
func Helper(x int) int { return clamp(x) }

// clamp is reachable only through Helper.
func clamp(x int) int {
	if x < 0 {
		return 0
	}
	return x
}
