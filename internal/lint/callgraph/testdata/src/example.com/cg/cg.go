// Package cg is a golden tree exercising the call-graph builder: direct
// calls, cross-package calls, concrete and interface method dispatch,
// closure attribution, and unresolvable function-value calls.
package cg

import "example.com/cg/sub"

// Stepper is implemented by Fast and Slow below; calls through it
// resolve by class-hierarchy analysis.
type Stepper interface {
	Step() int
}

// Fast is one Stepper implementation.
type Fast struct{ n int }

// Step implements Stepper.
func (f *Fast) Step() int { return f.n + 1 }

// Slow is the other Stepper implementation.
type Slow struct{ n int }

// Step implements Stepper.
func (s Slow) Step() int { return s.n + sub.Helper(s.n) }

// Root fans out through every call shape the builder resolves.
func Root(st Stepper) int {
	total := direct()
	total += sub.Helper(total)
	f := &Fast{n: total}
	total += f.Step()  // concrete method: edge to (*Fast).Step only
	total += st.Step() // interface dispatch: CHA edges to both Steps
	fn := indirectValue()
	total += fn(total)   // func value: no edge
	add := func(x int) { // closure body attributed to Root
		total += leaf(x)
	}
	add(total)
	return total
}

// direct is a plain same-package callee.
func direct() int { return leaf(1) }

// leaf terminates every chain.
func leaf(x int) int { return x }

// indirectValue returns a function value, so its caller gets an edge to
// indirectValue but none to the returned function's body.
func indirectValue() func(int) int {
	return func(x int) int { return x }
}

// unreached exists to prove reachability walks do not include it.
func unreached() int { return leaf(99) }
