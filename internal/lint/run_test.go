package lint_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"fantasticjoules/internal/lint"
	"fantasticjoules/internal/lint/loader"
)

// multiDir is the seeded multi-package module: findings from two
// analyzers across two files.
func multiDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "multi"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRunStableOrder pins the driver's output contract: findings come
// back sorted by (file, line, column, analyzer), and two identical runs
// produce byte-identical finding lists — no map-iteration order leaks
// into the report, so CI diffs and the ratchet stay deterministic.
func TestRunStableOrder(t *testing.T) {
	cfg := loader.Config{Dir: multiDir(t)}
	first, err := lint.Run(cfg, lint.Analyzers(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) < 4 {
		t.Fatalf("seeded module produced %d findings, want at least 4: %v", len(first), first)
	}
	analyzers := make(map[string]bool)
	for _, f := range first {
		analyzers[f.Analyzer] = true
	}
	if !analyzers["determinism"] || !analyzers["metricname"] {
		t.Fatalf("want findings from determinism and metricname, got %v", analyzers)
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line == b.Pos.Line && a.Pos.Column > b.Pos.Column) {
			t.Fatalf("findings out of order at %d:\n%v\n%v", i, a, b)
		}
	}

	second, err := lint.Run(cfg, lint.Analyzers(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two identical runs diverged:\nfirst:  %v\nsecond: %v", first, second)
	}
}

// TestRunWithStatsPhases checks the timing side-channel: one stat per
// distinct required fact, then one per analyzer in argument order.
func TestRunWithStatsPhases(t *testing.T) {
	_, stats, err := lint.RunWithStats(loader.Config{Dir: multiDir(t)}, lint.Analyzers(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	var facts, analyzers []string
	for _, s := range stats {
		if len(s.Name) > 5 && s.Name[:5] == "fact:" {
			facts = append(facts, s.Name)
		} else {
			analyzers = append(analyzers, s.Name)
		}
	}
	if len(analyzers) != len(lint.Analyzers()) {
		t.Fatalf("got %d analyzer stats, want %d: %v", len(analyzers), len(lint.Analyzers()), analyzers)
	}
	for i, a := range lint.Analyzers() {
		if analyzers[i] != a.Name {
			t.Fatalf("analyzer stat %d = %s, want %s", i, analyzers[i], a.Name)
		}
	}
	seen := make(map[string]bool)
	for _, f := range facts {
		if seen[f] {
			t.Fatalf("fact %s timed twice", f)
		}
		seen[f] = true
	}
	if !seen["fact:callgraph"] {
		t.Fatalf("no callgraph fact stat in %v", facts)
	}
}
