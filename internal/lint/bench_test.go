package lint_test

import (
	"path/filepath"
	"testing"

	"fantasticjoules/internal/lint"
	"fantasticjoules/internal/lint/loader"
)

// BenchmarkJouleslint times a full-suite run over the entire repository —
// load, shared facts (call graph, pool getters, epoch info), and all
// eight analyzers. This is what CI's lint gate pays on every push; the
// recording in BENCH_<n>.json keeps the cost visible as the tree and the
// analyzer suite grow.
func BenchmarkJouleslint(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		findings, err := lint.Run(loader.Config{Dir: root}, lint.Analyzers(), "./...")
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("tree is not lint-clean: %v", findings)
		}
	}
}
