// Package telemetry is the observability layer of the simulation
// substrate: a small, dependency-free metrics registry (counters, gauges,
// histograms) with an HTTP exposition handler speaking both the
// Prometheus text format and JSON.
//
// The paper's systems (Autopower §6.1, NetPowerBench §6.2) are themselves
// measurement infrastructure; this package gives our reproductions of
// them — and the sharded fleet replay — the operational visibility a real
// energy-monitoring deployment would have: live progress of a 9-week
// replay, memo-cache effectiveness of a suite regeneration, connected
// Autopower units, upload latencies.
//
// # Hot-path cost and determinism
//
// Every metric update is one or two atomic operations and never takes a
// lock; registration (the Counter/Gauge/Histogram lookups) takes a mutex
// and is meant for init-time or per-artifact frequency, not per-sample.
// Metrics are strictly write-only observers of the instrumented code:
// nothing in the simulation reads a metric back, so instrumented runs
// produce byte-identical datasets — the ispnet golden Workers-1-vs-8 test
// pins that guarantee with instrumentation permanently enabled.
//
// Metric families with per-instance detail encode their labels in the
// registered name via Label, e.g.
//
//	reg.Histogram(telemetry.Label("experiments_artifact_seconds", "artifact", "dataset"), ...)
//
// which the Prometheus exposition splices correctly into family HELP/TYPE
// blocks and per-series label sets.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use, but counters are normally created through a Registry so
// they are exposed.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down (queue depths, busy
// workers, temperatures). All methods are atomic and lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative-exposition buckets with
// fixed upper bounds, plus a running sum — the Prometheus histogram
// shape. Observations are atomic and lock-free.
type Histogram struct {
	bounds  []float64 // sorted inclusive upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets is a general-purpose set of duration buckets in seconds,
// spanning sub-millisecond shard replays to multi-minute full-resolution
// runs.
var DefBuckets = []float64{.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the idiomatic
// way to time a code path:
//
//	defer hist.ObserveSince(time.Now())
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket counts, one per bound plus the
// final +Inf bucket. The counts are non-cumulative.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// metricKind discriminates the registry's metric table.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them for exposition. Metric
// creation is get-or-create: requesting an existing name with the same
// kind returns the already-registered metric, so packages can declare
// their instruments independently; requesting an existing name with a
// different kind panics (a programming error, like a duplicate flag).
//
// The zero Registry is not usable; call NewRegistry, or use the
// process-wide Default registry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the instrumented
// packages (ispnet, experiments, autopower) register into and the CLI
// entry points expose.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(name, help string, kind metricKind) *entry {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	}
	r.metrics[name] = e
	return e
}

// Counter returns the counter registered under name, creating it with
// the given help text on first request.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge returns the gauge registered under name, creating it with the
// given help text on first request.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// Histogram returns the histogram registered under name, creating it
// with the given help text and bucket bounds on first request. A nil or
// empty bounds slice selects DefBuckets. Bounds are fixed at creation;
// later calls for the same name ignore the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as histogram", name, e.kind))
		}
		return e.h
	}
	e := &entry{name: name, help: help, kind: kindHistogram, h: newHistogram(bounds)}
	r.metrics[name] = e
	return e.h
}

// sorted returns the registered entries in name order, the deterministic
// exposition order.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.metrics))
	for _, e := range r.metrics {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Label appends one or more label pairs to a metric name, producing the
// `name{k="v",...}` form the exposition formats understand. Values are
// escaped per the Prometheus text format. kv must alternate keys and
// values; an existing label set on name is extended.
func Label(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		panic("telemetry: Label needs alternating key/value pairs")
	}
	base, labels := splitName(name)
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	if labels != "" {
		b.WriteString(labels)
	}
	for i := 0; i < len(kv); i += 2 {
		if i > 0 || labels != "" {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a registered name into its base family name and
// its (possibly empty) label body, without braces.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
