package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// This file renders a Registry for consumption: the Prometheus text
// exposition format (version 0.0.4, what `curl /metrics` and any
// Prometheus-compatible scraper expect) and a JSON form for programmatic
// use. Both renderings walk the same atomic snapshots and list metrics
// in sorted name order, so consecutive scrapes of a quiesced process are
// byte-identical.

// JSONMetric is one metric in the JSON exposition. Counter and gauge
// metrics carry Value; histograms carry Count, Sum, Bounds, and the
// per-bucket (non-cumulative) Counts, where Counts has one extra element
// for the overflow (+Inf) bucket.
type JSONMetric struct {
	Name   string    `json:"name"`
	Type   string    `json:"type"`
	Help   string    `json:"help,omitempty"`
	Value  *float64  `json:"value,omitempty"`
	Count  *uint64   `json:"count,omitempty"`
	Sum    *float64  `json:"sum,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
}

// WriteJSON writes all registered metrics as a JSON array of JSONMetric,
// sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	entries := r.sorted()
	out := make([]JSONMetric, 0, len(entries))
	for _, e := range entries {
		m := JSONMetric{Name: e.name, Type: e.kind.String(), Help: e.help}
		switch e.kind {
		case kindCounter:
			v := float64(e.c.Value())
			m.Value = &v
		case kindGauge:
			v := e.g.Value()
			m.Value = &v
		case kindHistogram:
			count, sum := e.h.Count(), e.h.Sum()
			m.Count = &count
			m.Sum = &sum
			m.Bounds = e.h.Bounds()
			m.Counts = e.h.BucketCounts()
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WritePrometheus writes all registered metrics in the Prometheus text
// exposition format, sorted by name, with one HELP/TYPE header per
// metric family (names created via Label share their family's header).
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, e := range r.sorted() {
		base, labels := splitName(e.name)
		if base != lastFamily {
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(e.help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, e.kind); err != nil {
				return err
			}
			lastFamily = base
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.g.Value()))
		case kindHistogram:
			err = writePrometheusHistogram(w, base, labels, e.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePrometheusHistogram renders one histogram series set: cumulative
// _bucket lines with le labels, then _sum and _count.
func writePrometheusHistogram(w io.Writer, base, labels string, h *Histogram) error {
	series := func(suffix, extra string) string {
		all := labels
		if extra != "" {
			if all != "" {
				all += ","
			}
			all += extra
		}
		if all == "" {
			return base + suffix
		}
		return base + suffix + "{" + all + "}"
	}
	bounds := h.Bounds()
	counts := h.BucketCounts()
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", `le="`+formatFloat(b)+`"`), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", series("_bucket", `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", series("_sum", ""), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", series("_count", ""), h.Count())
	return err
}

// Handler returns an HTTP handler exposing the registry. It serves the
// Prometheus text format by default and JSON when the request asks for
// it with ?format=json or an Accept: application/json header.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// formatFloat renders a float the way the Prometheus text format wants:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text per the Prometheus text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}
