package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %v, want 556.5", h.Sum())
	}
	// Bounds are inclusive: 1 falls in the le=1 bucket.
	want := []uint64{2, 1, 1, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count slice %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	h.ObserveSince(time.Now().Add(-2 * time.Second))
	if h.Count() != 6 || h.Sum() < 558 {
		t.Fatalf("ObserveSince: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", nil)
	if len(h.Bounds()) != len(DefBuckets) {
		t.Fatalf("bounds = %v", h.Bounds())
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind clash")
		}
	}()
	r.Gauge("x", "")
}

func TestLabel(t *testing.T) {
	got := Label("m_total", "artifact", "table2")
	if got != `m_total{artifact="table2"}` {
		t.Fatalf("Label = %q", got)
	}
	// Extending an existing label set, with escaping.
	got = Label(got, "q", `a"b\c`)
	want := `m_total{artifact="table2",q="a\"b\\c"}`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
}

// TestConcurrentUpdates hammers all three metric types from many
// goroutines; run under -race it is the registry's data-race gate, and
// the final values check that no increment is lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Registration races too: all goroutines get-or-create.
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_gauge", "")
			h := r.Histogram("conc_seconds", "", []float64{0.5})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%2) * 0.9)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("conc_total", "").Value(); v != goroutines*perG {
		t.Fatalf("counter = %d, want %d", v, goroutines*perG)
	}
	if v := r.Gauge("conc_gauge", "").Value(); v != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", v, goroutines*perG)
	}
	h := r.Histogram("conc_seconds", "", nil)
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	wantSum := float64(goroutines) * perG / 2 * 0.9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
	counts := h.BucketCounts()
	if counts[0] != goroutines*perG/2 || counts[1] != goroutines*perG/2 {
		t.Fatalf("buckets = %v", counts)
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default registry changed identity")
	}
}
