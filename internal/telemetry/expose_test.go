package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func exampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("seed_events_total", "events applied").Add(7)
	r.Gauge("seed_busy_workers", "busy workers").Set(3)
	h := r.Histogram("seed_replay_seconds", "replay durations", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Counter(Label("seed_artifact_total", "artifact", "fig1"), "per-artifact runs").Inc()
	r.Counter(Label("seed_artifact_total", "artifact", "table2"), "per-artifact runs").Add(2)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := exampleRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# HELP seed_events_total events applied\n# TYPE seed_events_total counter\nseed_events_total 7\n",
		"# TYPE seed_busy_workers gauge\nseed_busy_workers 3\n",
		"# TYPE seed_replay_seconds histogram\n",
		`seed_replay_seconds_bucket{le="0.1"} 1`,
		`seed_replay_seconds_bucket{le="1"} 2`,
		`seed_replay_seconds_bucket{le="+Inf"} 3`,
		"seed_replay_seconds_sum 5.55\n",
		"seed_replay_seconds_count 3\n",
		`seed_artifact_total{artifact="fig1"} 1`,
		`seed_artifact_total{artifact="table2"} 2`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	// Labeled series share one family header.
	if strings.Count(got, "# TYPE seed_artifact_total counter") != 1 {
		t.Errorf("want exactly one family header for seed_artifact_total:\n%s", got)
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	reg := exampleRegistry()
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	var b3 strings.Builder
	if err := reg.WritePrometheus(&b3); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b3.String() {
		t.Error("consecutive renders differ")
	}
}

// TestJSONRoundTrip renders the JSON exposition and decodes it back into
// the exported schema, checking every value survives.
func TestJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := exampleRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var metrics []JSONMetric
	if err := json.Unmarshal([]byte(b.String()), &metrics); err != nil {
		t.Fatalf("decode: %v\n%s", err, b.String())
	}
	byName := map[string]JSONMetric{}
	for _, m := range metrics {
		byName[m.Name] = m
	}
	c := byName["seed_events_total"]
	if c.Type != "counter" || c.Value == nil || *c.Value != 7 {
		t.Fatalf("counter = %+v", c)
	}
	g := byName["seed_busy_workers"]
	if g.Type != "gauge" || g.Value == nil || *g.Value != 3 {
		t.Fatalf("gauge = %+v", g)
	}
	h := byName["seed_replay_seconds"]
	if h.Type != "histogram" || h.Count == nil || *h.Count != 3 || h.Sum == nil || *h.Sum != 5.55 {
		t.Fatalf("histogram = %+v", h)
	}
	if len(h.Bounds) != 2 || len(h.Counts) != 3 {
		t.Fatalf("histogram shape = %+v", h)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("histogram counts = %v", h.Counts)
	}
	if _, ok := byName[`seed_artifact_total{artifact="table2"}`]; !ok {
		t.Fatalf("labeled metric missing from JSON: %s", b.String())
	}
}

func TestHandlerNegotiation(t *testing.T) {
	h := exampleRegistry().Handler()

	// Default: Prometheus text.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "seed_events_total 7") {
		t.Fatalf("text body = %s", rec.Body.String())
	}

	// ?format=json and Accept both select JSON.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var metrics []JSONMetric
	if err := json.Unmarshal(rec.Body.Bytes(), &metrics); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}

	// Writes are rejected.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d", rec.Code)
	}
}
