package zoo

import (
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fantasticjoules/internal/datasheet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDatasheetRoundTrip(t *testing.T) {
	s := openStore(t)
	rec := datasheet.Extracted{
		Model: "NCS-55A1-24H", Vendor: "Cisco",
		TypicalPower: 600, MaxPower: 1000,
		Bandwidth: 2.4 * units.TerabitPerSecond,
	}
	if err := s.PutDatasheet(rec); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetDatasheet("NCS-55A1-24H")
	if err != nil {
		t.Fatal(err)
	}
	if got.TypicalPower != 600 || got.Vendor != "Cisco" {
		t.Errorf("got %+v", got)
	}
	names, err := s.ListDatasheets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "NCS-55A1-24H" {
		t.Errorf("names = %v", names)
	}
}

func TestModelRoundTrip(t *testing.T) {
	s := openStore(t)
	m, err := model.Published("8201-32FH")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutModel(m); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetModel("8201-32FH")
	if err != nil {
		t.Fatal(err)
	}
	if got.PBase != m.PBase {
		t.Errorf("PBase = %v, want %v", got.PBase, m.PBase)
	}
	key := model.ProfileKey{Port: model.QSFP, Transceiver: model.PassiveDAC, Speed: 100 * units.GigabitPerSecond}
	p1, ok1 := m.Profile(key)
	p2, ok2 := got.Profile(key)
	if !ok1 || !ok2 {
		t.Fatal("profile missing after round trip")
	}
	if math.Abs(p1.EBit.Picojoules()-p2.EBit.Picojoules()) > 1e-9 ||
		math.Abs(p1.EPkt.Nanojoules()-p2.EPkt.Nanojoules()) > 1e-9 ||
		p1.PPort != p2.PPort || p1.POffset != p2.POffset {
		t.Errorf("profile mismatch: %+v vs %+v", p1, p2)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s := openStore(t)
	tr := timeseries.New("x")
	t0 := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	tr.Append(t0, 358.5)
	tr.Append(t0.Add(time.Minute), 359.25)
	if err := s.PutTrace("rtr1.autopower", tr); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetTrace("rtr1.autopower")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.At(0).V != 358.5 || !got.At(1).T.Equal(t0.Add(time.Minute)) {
		t.Errorf("trace = %v", got.Points())
	}
}

func TestNotFound(t *testing.T) {
	s := openStore(t)
	if _, err := s.GetModel("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestRejectsPathTraversal(t *testing.T) {
	s := openStore(t)
	tr := timeseries.New("x")
	for _, name := range []string{"../evil", "a/b", "", "..", `a\b`} {
		if err := s.PutTrace(name, tr); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := openStore(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	m, err := model.Published("NCS-55A1-24H")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutModel(m); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetModel("NCS-55A1-24H")
	if err != nil {
		t.Fatal(err)
	}
	if got.PBase != 320 {
		t.Errorf("PBase over HTTP = %v", got.PBase)
	}

	tr := timeseries.New("t")
	tr.Append(time.Now().UTC().Truncate(time.Millisecond), 42)
	if err := c.PutTrace("t1", tr); err != nil {
		t.Fatal(err)
	}
	gotTr, err := c.GetTrace("t1")
	if err != nil {
		t.Fatal(err)
	}
	if gotTr.Len() != 1 || gotTr.At(0).V != 42 {
		t.Errorf("trace over HTTP = %v", gotTr.Points())
	}

	if err := c.PutDatasheet(datasheet.Extracted{Model: "X-1", TypicalPower: 100}); err != nil {
		t.Fatal(err)
	}
	ds, err := c.GetDatasheet("X-1")
	if err != nil {
		t.Fatal(err)
	}
	if ds.TypicalPower != 100 {
		t.Errorf("datasheet over HTTP = %+v", ds)
	}

	names, err := c.List("models")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "NCS-55A1-24H" {
		t.Errorf("List = %v", names)
	}

	if _, err := c.GetModel("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("HTTP miss = %v, want ErrNotFound", err)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := openStore(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown category status = %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/models/x", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status = %d", resp.StatusCode)
	}

	// PUT with garbage body.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/api/v1/models/x", http.NoBody)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage PUT status = %d", resp.StatusCode)
	}
}

func TestStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := model.Published("VSP-4900")
	if err := s1.PutModel(m); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetModel("VSP-4900")
	if err != nil {
		t.Fatal(err)
	}
	if got.PBase.Watts() != 8.2 {
		t.Errorf("persisted PBase = %v", got.PBase)
	}
}
