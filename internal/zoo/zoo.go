// Package zoo implements the Network Power Zoo [18]: a small database
// aggregating the community's router power data — datasheet extractions,
// derived power models, and measurement traces — behind an HTTP API, so
// tools can publish and fetch each other's results.
//
// The store is a directory of JSON documents (one file per record),
// which keeps the zoo greppable and diff-able; the HTTP layer is a thin
// REST mapping over it.
package zoo

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fantasticjoules/internal/datasheet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// Store is a file-backed record store. Create with Open; all methods are
// safe for concurrent use.
type Store struct {
	mu  sync.RWMutex
	dir string
}

// Open creates (if necessary) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"datasheets", "models", "traces"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("zoo: open: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// ErrNotFound is returned when a record does not exist.
var ErrNotFound = errors.New("zoo: record not found")

// safeName validates a record key for use as a file name.
func safeName(name string) (string, error) {
	if name == "" {
		return "", errors.New("zoo: empty record name")
	}
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return "", fmt.Errorf("zoo: invalid record name %q", name)
	}
	return name + ".json", nil
}

func (s *Store) write(category, name string, v interface{}) error {
	fn, err := safeName(name)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("zoo: encode %s/%s: %w", category, name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, category, fn)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("zoo: write %s: %w", path, err)
	}
	return os.Rename(tmp, path)
}

func (s *Store) read(category, name string, v interface{}) error {
	fn, err := safeName(name)
	if err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(filepath.Join(s.dir, category, fn))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, category, name)
	}
	if err != nil {
		return fmt.Errorf("zoo: read %s/%s: %w", category, name, err)
	}
	return json.Unmarshal(data, v)
}

func (s *Store) list(category string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(filepath.Join(s.dir, category))
	if err != nil {
		return nil, fmt.Errorf("zoo: list %s: %w", category, err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			names = append(names, strings.TrimSuffix(e.Name(), ".json"))
		}
	}
	sort.Strings(names)
	return names, nil
}

// --- Datasheets ---

// PutDatasheet stores an extracted datasheet record keyed by model name.
func (s *Store) PutDatasheet(rec datasheet.Extracted) error {
	return s.write("datasheets", rec.Model, rec)
}

// GetDatasheet fetches the record for a model.
func (s *Store) GetDatasheet(modelName string) (datasheet.Extracted, error) {
	var rec datasheet.Extracted
	err := s.read("datasheets", modelName, &rec)
	return rec, err
}

// ListDatasheets lists the stored datasheet record names.
func (s *Store) ListDatasheets() ([]string, error) { return s.list("datasheets") }

// --- Power models ---

// ModelRecord is the JSON encoding of a power model.
type ModelRecord struct {
	Router     string          `json:"router"`
	PBaseWatts float64         `json:"pbase_watts"`
	Profiles   []ProfileRecord `json:"profiles"`
	// DerivedAt stamps when the model was produced.
	DerivedAt time.Time `json:"derived_at,omitempty"`
}

// ProfileRecord is the JSON encoding of one interface profile.
type ProfileRecord struct {
	Port         string  `json:"port"`
	Transceiver  string  `json:"transceiver"`
	SpeedBps     float64 `json:"speed_bps"`
	PPortWatts   float64 `json:"pport_watts"`
	PTrxInWatts  float64 `json:"ptrx_in_watts"`
	PTrxUpWatts  float64 `json:"ptrx_up_watts"`
	EBitPJ       float64 `json:"ebit_pj"`
	EPktNJ       float64 `json:"epkt_nj"`
	POffsetWatts float64 `json:"poffset_watts"`
}

// EncodeModel converts a power model to its storage record.
func EncodeModel(m *model.Model) ModelRecord {
	rec := ModelRecord{Router: m.RouterModel, PBaseWatts: m.PBase.Watts()}
	for _, p := range m.Profiles() {
		rec.Profiles = append(rec.Profiles, ProfileRecord{
			Port:         string(p.Key.Port),
			Transceiver:  string(p.Key.Transceiver),
			SpeedBps:     p.Key.Speed.BitsPerSecond(),
			PPortWatts:   p.PPort.Watts(),
			PTrxInWatts:  p.PTrxIn.Watts(),
			PTrxUpWatts:  p.PTrxUp.Watts(),
			EBitPJ:       p.EBit.Picojoules(),
			EPktNJ:       p.EPkt.Nanojoules(),
			POffsetWatts: p.POffset.Watts(),
		})
	}
	return rec
}

// DecodeModel rebuilds a power model from its storage record.
func DecodeModel(rec ModelRecord) *model.Model {
	m := model.New(rec.Router, units.Power(rec.PBaseWatts))
	for _, p := range rec.Profiles {
		m.AddProfile(model.InterfaceProfile{
			Key: model.ProfileKey{
				Port:        model.PortType(p.Port),
				Transceiver: model.TransceiverType(p.Transceiver),
				Speed:       units.BitRate(p.SpeedBps),
			},
			PPort:   units.Power(p.PPortWatts),
			PTrxIn:  units.Power(p.PTrxInWatts),
			PTrxUp:  units.Power(p.PTrxUpWatts),
			EBit:    units.Energy(p.EBitPJ) * units.Picojoule,
			EPkt:    units.Energy(p.EPktNJ) * units.Nanojoule,
			POffset: units.Power(p.POffsetWatts),
		})
	}
	return m
}

// PutModel stores a power model keyed by router model name.
func (s *Store) PutModel(m *model.Model) error {
	rec := EncodeModel(m)
	rec.DerivedAt = time.Now().UTC()
	return s.write("models", rec.Router, rec)
}

// GetModel fetches a stored power model.
func (s *Store) GetModel(router string) (*model.Model, error) {
	var rec ModelRecord
	if err := s.read("models", router, &rec); err != nil {
		return nil, err
	}
	return DecodeModel(rec), nil
}

// ListModels lists the stored model names.
func (s *Store) ListModels() ([]string, error) { return s.list("models") }

// --- Traces ---

// TraceRecord is the JSON encoding of a measurement trace.
type TraceRecord struct {
	Name string `json:"name"`
	// Points are [unix_milli, watts] pairs.
	Points [][2]float64 `json:"points"`
}

// EncodeTrace converts a series to its storage record.
func EncodeTrace(s *timeseries.Series) TraceRecord {
	rec := TraceRecord{Name: s.Name}
	for _, p := range s.Points() {
		rec.Points = append(rec.Points, [2]float64{float64(p.T.UnixMilli()), p.V})
	}
	return rec
}

// DecodeTrace rebuilds a series from its storage record.
func DecodeTrace(rec TraceRecord) *timeseries.Series {
	s := timeseries.New(rec.Name)
	for _, p := range rec.Points {
		s.Append(time.UnixMilli(int64(p[0])).UTC(), p[1])
	}
	return s
}

// PutTrace stores a trace under a name.
func (s *Store) PutTrace(name string, series *timeseries.Series) error {
	rec := EncodeTrace(series)
	rec.Name = name
	return s.write("traces", name, rec)
}

// GetTrace fetches a stored trace.
func (s *Store) GetTrace(name string) (*timeseries.Series, error) {
	var rec TraceRecord
	if err := s.read("traces", name, &rec); err != nil {
		return nil, err
	}
	return DecodeTrace(rec), nil
}

// ListTraces lists the stored trace names.
func (s *Store) ListTraces() ([]string, error) { return s.list("traces") }
