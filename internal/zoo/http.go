package zoo

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"fantasticjoules/internal/datasheet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/timeseries"
)

// Handler returns the HTTP API over a store:
//
//	GET  /api/v1/{datasheets|models|traces}          list record names
//	GET  /api/v1/{datasheets|models|traces}/{name}   fetch one record
//	PUT  /api/v1/{datasheets|models|traces}/{name}   store one record
func Handler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/api/v1/")
		parts := strings.SplitN(rest, "/", 2)
		category := parts[0]
		name := ""
		if len(parts) == 2 {
			name = parts[1]
		}
		switch category {
		case "datasheets", "models", "traces":
		default:
			http.Error(w, "unknown category", http.StatusNotFound)
			return
		}
		switch {
		case r.Method == http.MethodGet && name == "":
			names, err := s.list(category)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, names)
		case r.Method == http.MethodGet:
			serveGet(s, w, category, name)
		case r.Method == http.MethodPut && name != "":
			servePut(s, w, r, category, name)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

func serveGet(s *Store, w http.ResponseWriter, category, name string) {
	var v interface{}
	var err error
	switch category {
	case "datasheets":
		var rec datasheet.Extracted
		err = s.read(category, name, &rec)
		v = rec
	case "models":
		var rec ModelRecord
		err = s.read(category, name, &rec)
		v = rec
	case "traces":
		var rec TraceRecord
		err = s.read(category, name, &rec)
		v = rec
	}
	if errors.Is(err, ErrNotFound) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, v)
}

func servePut(s *Store, w http.ResponseWriter, r *http.Request, category, name string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch category {
	case "datasheets":
		var rec datasheet.Extracted
		if err := json.Unmarshal(body, &rec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec.Model = name
		err = s.PutDatasheet(rec)
	case "models":
		var rec ModelRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec.Router = name
		err = s.write(category, name, rec)
	case "traces":
		var rec TraceRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec.Name = name
		err = s.write(category, name, rec)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Client talks to a zoo server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) get(category, name string, v interface{}) error {
	url := fmt.Sprintf("%s/api/v1/%s/%s", c.BaseURL, category, name)
	resp, err := c.http().Get(url)
	if err != nil {
		return fmt.Errorf("zoo client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, category, name)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("zoo client: %s returned %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *Client) put(category, name string, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/api/v1/%s/%s", c.BaseURL, category, name)
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("zoo client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("zoo client: %s returned %s", url, resp.Status)
	}
	return nil
}

// List fetches the record names in a category.
func (c *Client) List(category string) ([]string, error) {
	url := fmt.Sprintf("%s/api/v1/%s", c.BaseURL, category)
	resp, err := c.http().Get(url)
	if err != nil {
		return nil, fmt.Errorf("zoo client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("zoo client: %s returned %s", url, resp.Status)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, err
	}
	return names, nil
}

// PutModel uploads a power model.
func (c *Client) PutModel(m *model.Model) error {
	return c.put("models", m.RouterModel, EncodeModel(m))
}

// GetModel downloads a power model.
func (c *Client) GetModel(router string) (*model.Model, error) {
	var rec ModelRecord
	if err := c.get("models", router, &rec); err != nil {
		return nil, err
	}
	return DecodeModel(rec), nil
}

// PutTrace uploads a trace.
func (c *Client) PutTrace(name string, s *timeseries.Series) error {
	rec := EncodeTrace(s)
	rec.Name = name
	return c.put("traces", name, rec)
}

// GetTrace downloads a trace.
func (c *Client) GetTrace(name string) (*timeseries.Series, error) {
	var rec TraceRecord
	if err := c.get("traces", name, &rec); err != nil {
		return nil, err
	}
	return DecodeTrace(rec), nil
}

// PutDatasheet uploads a datasheet record.
func (c *Client) PutDatasheet(rec datasheet.Extracted) error {
	return c.put("datasheets", rec.Model, rec)
}

// GetDatasheet downloads a datasheet record.
func (c *Client) GetDatasheet(modelName string) (datasheet.Extracted, error) {
	var rec datasheet.Extracted
	err := c.get("datasheets", modelName, &rec)
	return rec, err
}
