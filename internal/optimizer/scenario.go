package optimizer

import (
	"fmt"
	"math/rand"
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/units"
)

// Scenario is a declarative stress environment for a control run: fleet
// events to perturb the baseline with, a carrier-availability view for
// the controller, and an observed-traffic modifier. Scenarios are pure
// data derived from a seed — replaying the same scenario against the
// same fleet config reproduces the same baseline and the same decision
// trace.
type Scenario struct {
	Name string
	// Events are perturbed into the fleet (and resimulated into the
	// baseline) before the controller starts: the environment acts, the
	// optimizer reacts.
	Events []ispnet.FleetEvent
	// Down reports whether a link's carrier is faulted at a time; nil
	// when the scenario injects no faults. Wire it into Config.Down.
	Down func(linkID int, t time.Time) bool
	// WrapTraffic modifies the observed-traffic view to match what the
	// scenario's events do to the realized load; nil when the scenario
	// does not touch load.
	WrapTraffic func(hypnos.TrafficFunc) hypnos.TrafficFunc
}

// outage is one closed-open carrier-loss interval.
type outage struct {
	from, to time.Time
}

// FaultStorm builds the optimizer-vs-chaos scenario: seeded random link
// outages across the window — the fleet-level analogue of the collector
// chaos profiles. Each internal link independently suffers up to two
// outages of 2–12 h with probability stormProb; an outage emits
// link-down events on both endpoints at its start and link-up events at
// its end, and the Down view reports the interval to the controller. The
// controller must neither blackhole demand (it never sleeps into a
// partition the faults created) nor oscillate (hysteresis bounds the
// transition count).
func FaultStorm(topo hypnos.Topology, seed int64, start time.Time, window time.Duration) Scenario {
	const stormProb = 0.15
	rng := rand.New(rand.NewSource(seed))
	intervals := make([][]outage, len(topo.Links))
	var evs []ispnet.FleetEvent
	for i, l := range topo.Links {
		if rng.Float64() >= stormProb {
			continue
		}
		n := 1 + rng.Intn(2)
		for k := 0; k < n; k++ {
			at := start.Add(time.Duration(rng.Int63n(int64(window))))
			dur := 2*time.Hour + time.Duration(rng.Int63n(int64(10*time.Hour)))
			end := at.Add(dur)
			intervals[i] = append(intervals[i], outage{from: at, to: end})
			desc := fmt.Sprintf("fault storm outage %s", l.A.Interface)
			evs = append(evs,
				ispnet.FleetEvent{At: at, Router: l.A.Router, Op: ispnet.OpLinkDown, Iface: l.A.Interface, Desc: desc},
				ispnet.FleetEvent{At: at, Router: l.B.Router, Op: ispnet.OpLinkDown, Iface: l.B.Interface, Desc: desc},
				ispnet.FleetEvent{At: end, Router: l.A.Router, Op: ispnet.OpLinkUp, Iface: l.A.Interface, Desc: desc},
				ispnet.FleetEvent{At: end, Router: l.B.Router, Op: ispnet.OpLinkUp, Iface: l.B.Interface, Desc: desc},
			)
		}
	}
	return Scenario{
		Name:   "fault-storm",
		Events: evs,
		Down: func(linkID int, t time.Time) bool {
			if linkID < 0 || linkID >= len(intervals) {
				return false
			}
			for _, o := range intervals[linkID] {
				if !t.Before(o.from) && t.Before(o.to) {
					return true
				}
			}
			return false
		},
	}
}

// FlashCrowd builds the optimizer-vs-flash-crowd scenario: at time at,
// every router's offered load steps up by factor (a network-wide
// scale-load event per router), and the observed-traffic view scales
// identically from that instant. Links the optimizer put to sleep under
// the pre-step load must wake — via the planner's re-validation pass —
// before the post-step load pushes any surviving link past the SLA cap.
func FlashCrowd(n *ispnet.Network, at time.Time, factor float64) Scenario {
	evs := make([]ispnet.FleetEvent, 0, len(n.Routers))
	for _, r := range n.Routers {
		evs = append(evs, ispnet.FleetEvent{
			At: at, Router: r.Name, Op: ispnet.OpScaleLoad, Factor: factor,
			Desc: fmt.Sprintf("flash crowd x%g", factor),
		})
	}
	return Scenario{
		Name:   "flash-crowd",
		Events: evs,
		WrapTraffic: func(base hypnos.TrafficFunc) hypnos.TrafficFunc {
			return func(linkID int, t time.Time) units.BitRate {
				load := base(linkID, t)
				if !t.Before(at) {
					load = units.BitRate(load.BitsPerSecond() * factor)
				}
				return load
			}
		},
	}
}
