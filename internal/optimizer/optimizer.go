package optimizer

import (
	"errors"
	"fmt"
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/timeseries"
	"fantasticjoules/internal/units"
)

// The §8 control knobs. Callers must set Config.MaxUtilization (and
// PSUMaxLoad, when PSUShed is on) explicitly — pass these constants for
// the paper's values.
const (
	// DefaultMaxUtilization is the §8 guardrail cap: surviving links may
	// carry at most half their capacity after rerouting, keeping failover
	// headroom.
	DefaultMaxUtilization = 0.5
	// DefaultPSUMaxLoad is the §9.3.4 provisioning cap: surviving PSUs
	// may carry at most 80 % of their rated capacity at the peak.
	DefaultPSUMaxLoad = 0.8
)

// ErrNonPositiveConfig is returned by New when a Config ratio that the
// run would consume is zero or negative. There is no silent defaulting
// for these: a zero MaxUtilization is indistinguishable from an unset
// field, and treating it as "0.5" masked real caller bugs (an explicit
// "no headroom" cap silently became the paper default). Callers choose a
// value — DefaultMaxUtilization / DefaultPSUMaxLoad for the §8/§9
// figures — or get this error, testable via errors.Is.
var ErrNonPositiveConfig = errors.New("optimizer: non-positive config value")

// Config tunes a control run.
type Config struct {
	// Start and Window bound the control loop (default window: the §8
	// one-month run). Start must be set.
	Start  time.Time
	Window time.Duration
	// Step is the control interval (default 1 h, the §8 granularity).
	Step time.Duration
	// MaxUtilization is the guardrail's load cap on surviving links after
	// rerouting. Required: must be positive (DefaultMaxUtilization is the
	// §8 value); New rejects non-positive values with ErrNonPositiveConfig.
	MaxUtilization float64
	// MinDwellSteps adds actuation hysteresis: a link that changed state
	// keeps it for at least this many steps (safety wakes excepted). Zero
	// disables hysteresis and makes the static case exactly hypnos.Run.
	MinDwellSteps int
	// Down, when non-nil, reports whether a link's carrier is faulted at a
	// step time. Down links are never slept, never used for rerouting, and
	// sleeping links whose carrier fails stay asleep (waking an interface
	// cannot restore a lost carrier). Scenario.Down provides this for the
	// fault-storm family.
	Down func(linkID int, t time.Time) bool
	// PSUShed enables the §9.3.4 provisioning pass: after the sleep loop,
	// shed redundant PSUs on routers whose peak wall draw fits in fewer
	// units at no more than PSUMaxLoad of their capacity. PSUMaxLoad is
	// required whenever PSUShed is set (DefaultPSUMaxLoad is the §9.3.4
	// value) and rejected with ErrNonPositiveConfig otherwise.
	PSUShed    bool
	PSUMaxLoad float64
}

func (c *Config) applyDefaults() {
	if c.Window == 0 {
		c.Window = 30 * 24 * time.Hour
	}
	if c.Step == 0 {
		c.Step = time.Hour
	}
}

// validate rejects ratio knobs the run would consume at non-positive
// values; see ErrNonPositiveConfig.
func (c *Config) validate() error {
	if c.MaxUtilization <= 0 {
		return fmt.Errorf("%w: MaxUtilization = %v (set it explicitly; DefaultMaxUtilization is the §8 cap)", ErrNonPositiveConfig, c.MaxUtilization)
	}
	if c.PSUShed && c.PSUMaxLoad <= 0 {
		return fmt.Errorf("%w: PSUShed with PSUMaxLoad = %v (set it explicitly; DefaultPSUMaxLoad is the §9.3.4 cap)", ErrNonPositiveConfig, c.PSUMaxLoad)
	}
	if c.Window < 0 {
		return fmt.Errorf("%w: Window = %v", ErrNonPositiveConfig, c.Window)
	}
	if c.Step < 0 {
		return fmt.Errorf("%w: Step = %v", ErrNonPositiveConfig, c.Step)
	}
	return nil
}

// StepRecord is one control step of the decision trace.
type StepRecord struct {
	Time time.Time
	// Sleeping lists the link IDs asleep after the step, ascending (nil
	// when none) — the realized schedule, comparable to hypnos.Schedule.
	Sleeping []int
	// Slept and Woke are the transitions actuated at this step.
	Slept []int
	Woke  []int
	// Vetoed are the guardrail rejections of this step.
	Vetoed []hypnos.Veto
}

// Report is the outcome of a control run: the full decision trace, the
// committed actuation schedule, and the realized savings measured against
// the no-op baseline.
type Report struct {
	Steps []StepRecord
	// Actions counts committed actuation events (one per endpoint, so two
	// per link transition); Vetoes counts guardrail rejections;
	// Resimulates counts incremental fleet replays.
	Actions     int
	Vetoes      int
	Resimulates int
	// GuardrailViolations counts steps whose committed plan failed the
	// independent post-decision audit (connectivity + aggregate headroom).
	// A correct run reports zero; the field exists so tests and the
	// artifact can prove it.
	GuardrailViolations int
	// BaselineJoules integrates the no-op dataset's wall power over the
	// full study window; SleepJoules is the same integral with the sleep
	// schedule actuated (links re-woken at window end); FinalJoules adds
	// the PSU shed. All wall-side, through the PSU conversion loss.
	BaselineJoules units.Energy
	SleepJoules    units.Energy
	FinalJoules    units.Energy
	// SleepSavedJoules = Baseline − Sleep; SleepSavedWatts is that energy
	// averaged over the control window — the number comparable to the §8
	// estimate envelope. PSUSavedJoules = Sleep − Final.
	SleepSavedJoules units.Energy
	SleepSavedWatts  units.Power
	PSUSavedJoules   units.Energy
	// PSUsShed counts PSUs taken offline by the provisioning pass.
	PSUsShed int
	// Events is every committed FleetEvent in commit order — replaying
	// them cold via SimulateWithEvents reproduces the final dataset bit
	// for bit (the replay property test pins this).
	Events []ispnet.FleetEvent
}

// Transitions counts the sleep/wake state changes across the trace — the
// oscillation metric the chaos scenario bounds.
func (r *Report) Transitions() int {
	n := 0
	for _, s := range r.Steps {
		n += len(s.Slept) + len(s.Woke)
	}
	return n
}

// Controller is the closed-loop optimizer: it observes link traffic
// through a TrafficFunc (the SNMP-counter view, built from the pristine
// network model so observation is independent of its own actuation),
// plans each step with the shared hypnos.Planner, and actuates committed
// transitions on the retained fleet.
type Controller struct {
	fleet   *ispnet.Fleet
	topo    hypnos.Topology
	traffic hypnos.TrafficFunc
	cfg     Config
	planner *hypnos.Planner

	// audit scratch, reused across steps.
	auditDown []bool
	auditEx   []bool
}

// New wires a controller to a fleet. topo and traffic come from
// hypnos.FromNetwork over a pristine build of the fleet's config — not
// the retained (mutated) network — so the observed load model matches
// what the shards realize. The fleet's current dataset is the no-op
// baseline every saving is measured against; scenario events must be
// perturbed and resimulated before New so they are part of the baseline.
func New(fleet *ispnet.Fleet, topo hypnos.Topology, traffic hypnos.TrafficFunc, cfg Config) (*Controller, error) {
	if fleet == nil {
		return nil, errors.New("optimizer: nil fleet")
	}
	if traffic == nil {
		return nil, errors.New("optimizer: nil traffic func")
	}
	if cfg.Start.IsZero() {
		return nil, errors.New("optimizer: config needs a start time")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	p, err := hypnos.NewPlanner(topo, hypnos.PlannerOptions{
		MaxUtilization: cfg.MaxUtilization,
		MinDwellSteps:  cfg.MinDwellSteps,
	})
	if err != nil {
		return nil, err
	}
	return &Controller{
		fleet:     fleet,
		topo:      topo,
		traffic:   traffic,
		cfg:       cfg,
		planner:   p,
		auditDown: make([]bool, len(topo.Links)),
		auditEx:   make([]bool, len(topo.Links)),
	}, nil
}

// planStep is the instrumented decision: greedy policy plus guardrail,
// timed into the guardrail-latency histogram.
func (c *Controller) planStep(loads []float64, down []bool) hypnos.StepPlan {
	defer metricGuardrailSeconds.ObserveSince(time.Now())
	return c.planner.PlanStep(loads, down)
}

// actuation renders one link transition as its two endpoint events.
func actuation(l hypnos.Link, t time.Time, sleep bool) [2]ispnet.FleetEvent {
	op := ispnet.OpWake
	if sleep {
		op = ispnet.OpSleep
	}
	return [2]ispnet.FleetEvent{
		{At: t, Router: l.A.Router, Op: op, Iface: l.A.Interface},
		{At: t, Router: l.B.Router, Op: op, Iface: l.B.Interface},
	}
}

// commit perturbs the fleet with a step's actuation events and replays
// the dirty routers incrementally.
func (c *Controller) commit(rep *Report, evs []ispnet.FleetEvent) error {
	if len(evs) == 0 {
		return nil
	}
	if err := c.fleet.Perturb(evs...); err != nil {
		return err
	}
	if _, err := c.fleet.Resimulate(); err != nil {
		return err
	}
	rep.Events = append(rep.Events, evs...)
	rep.Actions += len(evs)
	rep.Resimulates++
	metricActions.Add(uint64(len(evs)))
	metricResimulates.Inc()
	return nil
}

// audit is the independent post-decision check of the committed plan: the
// asleep-plus-down graph keeps the down-only graph's connectivity (no
// demand blackholed by the optimizer), and the slept traffic fits the
// aggregate MaxUtilization headroom of the surviving links. It
// deliberately re-derives both invariants from scratch rather than
// trusting the planner's bookkeeping.
func (c *Controller) audit(sleeping []int, down []bool, loads []float64) error {
	for i := range c.auditDown {
		c.auditDown[i] = down != nil && down[i]
		c.auditEx[i] = c.auditDown[i]
	}
	for _, id := range sleeping {
		c.auditEx[id] = true
	}
	base := hypnos.Components(c.topo, c.auditDown)
	if got := hypnos.Components(c.topo, c.auditEx); got != base {
		return fmt.Errorf("optimizer: plan splits the network: %d components, want %d", got, base)
	}
	var slept, spare float64
	for _, l := range c.topo.Links {
		if c.auditDown[l.ID] {
			continue
		}
		if c.auditEx[l.ID] {
			// Sleeping and not down: its traffic must fit the survivors.
			// (Down links were skipped above — a lost carrier carries
			// nothing to reroute, asleep or not.)
			slept += loads[l.ID]
			continue
		}
		if headroom := c.cfg.MaxUtilization*l.Capacity.BitsPerSecond() - loads[l.ID]; headroom > 0 {
			spare += headroom
		}
	}
	if slept > spare {
		return fmt.Errorf("optimizer: plan sleeps %.0f bps with only %.0f bps of headroom", slept, spare)
	}
	return nil
}

// Run executes the control loop over the configured window and returns
// the decision trace plus realized savings. The loop: observe link loads
// at the step time, plan with the shared greedy policy + guardrail,
// actuate the transitions as fleet events, replay incrementally. At the
// window end every still-sleeping link is woken, so the savings integral
// covers exactly the control window; the PSU provisioning pass (if
// enabled) then sheds redundant supplies for the remainder of the study.
// Deterministic: same fleet config, scenario, and Config produce the same
// trace and the same realized joules, bit for bit.
func (c *Controller) Run() (*Report, error) {
	baseline := c.fleet.Dataset()
	if baseline == nil {
		return nil, errors.New("optimizer: fleet has no dataset")
	}
	rep := &Report{BaselineJoules: units.Energy(timeseries.IntegratePower(baseline.TotalPower))}

	loads := make([]float64, len(c.topo.Links))
	var down []bool
	if c.cfg.Down != nil {
		down = make([]bool, len(c.topo.Links))
	}
	end := c.cfg.Start.Add(c.cfg.Window)
	for t := c.cfg.Start; t.Before(end); t = t.Add(c.cfg.Step) {
		for i, l := range c.topo.Links {
			loads[i] = c.traffic(l.ID, t).BitsPerSecond()
			if down != nil {
				down[i] = c.cfg.Down(l.ID, t)
			}
		}
		plan := c.planStep(loads, down)
		if err := c.audit(plan.Sleeping, down, loads); err != nil {
			rep.GuardrailViolations++
		}
		// plan.Vetoed aliases the planner's scratch; the record outlives
		// the next step, so copy.
		rep.Steps = append(rep.Steps, StepRecord{
			Time: t, Sleeping: plan.Sleeping, Slept: plan.Slept, Woke: plan.Woke,
			Vetoed: append([]hypnos.Veto(nil), plan.Vetoed...),
		})
		rep.Vetoes += len(plan.Vetoed)
		metricVetoes.Add(uint64(len(plan.Vetoed)))

		var evs []ispnet.FleetEvent
		for _, id := range plan.Slept {
			pair := actuation(c.topo.Links[id], t, true)
			evs = append(evs, pair[0], pair[1])
		}
		for _, id := range plan.Woke {
			pair := actuation(c.topo.Links[id], t, false)
			evs = append(evs, pair[0], pair[1])
		}
		if err := c.commit(rep, evs); err != nil {
			return nil, err
		}
	}

	// Hand the fleet back awake: wake every link still sleeping at the
	// window end, so the realized delta integrates the control window
	// only.
	var wake []ispnet.FleetEvent
	for _, l := range c.topo.Links {
		if c.planner.Sleeping(l.ID) {
			pair := actuation(l, end, false)
			wake = append(wake, pair[0], pair[1])
		}
	}
	if err := c.commit(rep, wake); err != nil {
		return nil, err
	}

	sleepDS := c.fleet.Dataset()
	rep.SleepJoules = units.Energy(timeseries.IntegratePower(sleepDS.TotalPower))
	rep.SleepSavedJoules = rep.BaselineJoules - rep.SleepJoules
	rep.SleepSavedWatts = units.Power(rep.SleepSavedJoules.Joules() / c.cfg.Window.Seconds())
	rep.FinalJoules = rep.SleepJoules

	if c.cfg.PSUShed {
		evs, shed := c.planPSUShed(baseline)
		if err := c.commit(rep, evs); err != nil {
			return nil, err
		}
		rep.PSUsShed = shed
		if shed > 0 {
			rep.FinalJoules = units.Energy(timeseries.IntegratePower(c.fleet.Dataset().TotalPower))
			rep.PSUSavedJoules = rep.SleepJoules - rep.FinalJoules
		}
	}

	metricSavedJoules.Set((rep.BaselineJoules - rep.FinalJoules).Joules())
	metricSavedWatts.Set(rep.SleepSavedWatts.Watts())
	return rep, nil
}

// planPSUShed sizes each router's PSU pool against its baseline peak wall
// draw: keep the smallest count m ≥ 1 whose aggregate capacity covers the
// peak at no more than PSUMaxLoad, shed the rest (highest indices first,
// index 0 always stays). Peak wall power is the conservative provisioning
// figure — it is the input-side draw, above the output-side load the
// PSUs actually share. The shed events are timestamped at the control
// start: a provisioning decision, in force for the whole study.
func (c *Controller) planPSUShed(baseline *ispnet.Dataset) ([]ispnet.FleetEvent, int) {
	var evs []ispnet.FleetEvent
	shed := 0
	for _, rp := range baseline.PSUSnapshots {
		n := len(rp.PSUs)
		if n <= 1 {
			continue
		}
		peak, ok := baseline.RouterWallPeak[rp.Router]
		if !ok {
			continue
		}
		capacity := rp.PSUs[0].Capacity.Watts()
		if capacity <= 0 {
			continue
		}
		keep := n
		for m := 1; m < n; m++ {
			if peak.Watts() <= c.cfg.PSUMaxLoad*float64(m)*capacity {
				keep = m
				break
			}
		}
		for idx := n - 1; idx >= keep; idx-- {
			evs = append(evs, ispnet.FleetEvent{
				At: c.cfg.Start, Router: rp.Router, Op: ispnet.OpPSUOffline, PSU: idx,
			})
			shed++
		}
	}
	return evs, shed
}
