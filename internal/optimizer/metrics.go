package optimizer

import "fantasticjoules/internal/telemetry"

// Control-loop instrumentation. Write-only observers on the process-wide
// registry, mirroring the ispnet replay metrics: the controller never
// reads them back, so instrumented runs stay bit-identical.
var (
	metricActions = telemetry.Default().Counter("optimizer_actions_total",
		"actuation events committed to the fleet (sleep/wake/psu per endpoint)")
	metricVetoes = telemetry.Default().Counter("optimizer_vetoes_total",
		"sleep candidates rejected by the SLA guardrail before commit")
	metricResimulates = telemetry.Default().Counter("optimizer_resimulates_total",
		"incremental fleet replays triggered by committed control steps")
	metricSavedJoules = telemetry.Default().Gauge("optimizer_realized_saved_joules",
		"realized energy saved vs the no-op baseline over the last run (wall side)")
	metricSavedWatts = telemetry.Default().Gauge("optimizer_realized_saved_watts",
		"mean realized power saved over the last run's control window")
	metricGuardrailSeconds = telemetry.Default().Histogram("optimizer_guardrail_seconds",
		"wall-clock duration of one control step's decision plus guardrail check", nil)
)
