// Package optimizer closes the loop that the offline §8–§9 analyses
// leave open: instead of estimating what link sleeping and PSU shedding
// would save, a Controller watches per-link traffic on the simulated
// fleet, decides step by step which internal links to sleep (greedy, the
// exact hypnos.Planner decision procedure, so the static case is
// identical to the §8 schedule) and which PSUs to shed, actuates the
// decisions as declarative ispnet.FleetEvents through the incremental
// Fleet.Resimulate path, and measures the *realized* joules saved against
// the no-op baseline dataset — wall-side, through the PSU conversion
// loss, not the DC-side estimate.
//
// Every proposed action passes the SLA guardrail before it commits: the
// awake part of the graph must keep the full topology's connectivity (no
// blackholed demand, checked on hypnos's dense-index reachability graph)
// and no surviving link may exceed the configured utilization cap after
// rerouting. Guardrail rejections are vetoes — counted, recorded per
// step, and exported as telemetry. An independent per-step audit
// (connectivity plus aggregate headroom, the hypnos.VerifySchedule
// invariants) double-checks every committed plan and counts violations;
// a correct run reports zero.
//
// Scenario bundles the stress families the controller must survive:
// FaultStorm (seeded link outages, the fleet-level analogue of the PR 4
// collector chaos profiles) and FlashCrowd (a network-wide load step).
// Both are declarative and seeded, so the decision trace is reproducible
// bit for bit: same seed, same trace — the determinism analyzer enforces
// the absence of wall-clock and global-rand reads in this package.
package optimizer
