package optimizer_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/optimizer"
)

// The scale-agnostic acceptance suite: the same scenario invariants the
// 107-router tests pin — zero guardrail violations, no fresh sleep of a
// faulted carrier, hysteresis-bounded oscillation, same-seed bit-identity
// — must hold when the rig is derived from a generated 1k-router
// hierarchical fleet, where the retained side runs in chunk mode. A
// structural 100k smoke checks the control plane's topology path alone.

// hier1kCfg is the 1k-router rig config: hierarchical fleet, hourly SNMP
// grid aligned with the hourly control step.
func hier1kCfg() ispnet.Config {
	return ispnet.Config{
		Seed:     42,
		Routers:  1000,
		Start:    start,
		Duration: 48 * time.Hour,
		SNMPStep: time.Hour,
	}
}

// storm1k runs the fault-storm loop on a fresh 1k rig and returns the
// report; TestOptimizer1kFaultStorm calls it twice for the determinism
// half of the acceptance criteria.
func storm1k(t *testing.T) *optimizer.Report {
	t.Helper()
	cfg := hier1kCfg()
	r, err := optimizer.NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := optimizer.FaultStorm(r.Topo, 7, start, cfg.Duration)
	if len(sc.Events) == 0 {
		t.Fatal("fault storm generated no outages on the 1k topology")
	}
	if err := r.Apply(&sc); err != nil {
		t.Fatal(err)
	}
	c, err := r.Controller(optimizer.Config{
		Start: start, Window: 24 * time.Hour, Step: time.Hour,
		MinDwellSteps: 4, Down: sc.Down,
		MaxUtilization: optimizer.DefaultMaxUtilization,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fleet.ChunkRetained() {
		t.Error("1k fleet not in chunk-retained mode")
	}
	return rep
}

// TestOptimizer1kFaultStorm is the chaos scenario at 1k: outages land on
// the generated topology while the loop decides, and every 107-router
// invariant must carry over — plus two same-seed runs must produce the
// identical decision trace and bit-identical realized joules through the
// chunk-retained resimulation path.
func TestOptimizer1kFaultStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("1k closed-loop runs in -short mode")
	}
	rep := storm1k(t)

	if rep.GuardrailViolations != 0 {
		t.Errorf("guardrail violations = %d, want 0", rep.GuardrailViolations)
	}
	sc := optimizer.FaultStorm(topoOf(t, hier1kCfg()), 7, start, hier1kCfg().Duration)
	const dwell = 4
	steps := len(rep.Steps)
	maxPerLink := steps/dwell + 1
	perLink := map[int]int{}
	for _, s := range rep.Steps {
		for _, id := range s.Slept {
			if sc.Down(id, s.Time) {
				t.Errorf("step %v sleeps link %d whose carrier is down", s.Time, id)
			}
			perLink[id]++
		}
		for _, id := range s.Woke {
			perLink[id]++
		}
	}
	for id, n := range perLink {
		if n > maxPerLink {
			t.Errorf("link %d transitioned %d times in %d steps (dwell %d allows %d): oscillation",
				id, n, steps, dwell, maxPerLink)
		}
	}
	if rep.Transitions() == 0 {
		t.Error("controller never actuated during the 1k storm")
	}
	if rep.SleepSavedJoules <= 0 {
		t.Errorf("realized savings %v, want > 0 even under faults", rep.SleepSavedJoules)
	}

	// Determinism: a second fresh run of the same seeded storm.
	again := storm1k(t)
	if !reflect.DeepEqual(rep.Steps, again.Steps) {
		t.Fatal("decision traces differ between same-seed 1k runs")
	}
	if !reflect.DeepEqual(rep.Events, again.Events) {
		t.Fatal("committed event schedules differ between same-seed 1k runs")
	}
	if math.Float64bits(rep.SleepSavedJoules.Joules()) != math.Float64bits(again.SleepSavedJoules.Joules()) {
		t.Fatalf("realized joules differ: %v vs %v", rep.SleepSavedJoules, again.SleepSavedJoules)
	}
}

// topoOf rebuilds the pristine topology for a config (for re-deriving a
// scenario's Down view without keeping the first rig alive).
func topoOf(t *testing.T, cfg ispnet.Config) hypnos.Topology {
	t.Helper()
	n, err := ispnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo, _, err := hypnos.FromNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestOptimizer1kFlashCrowd steps the whole 1k fleet's offered load
// mid-run: links slept under the calm load must wake through the
// planner's re-validation before any surviving link trips the SLA cap.
// This is the scenario the OpScaleLoad fix exists for — on hierarchical
// fleets the realized load lives in per-interface subscriber demand, not
// MeanLoad, and the event must scale both.
func TestOptimizer1kFlashCrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("1k closed-loop runs in -short mode")
	}
	cfg := hier1kCfg()
	crowdAt := start.Add(24 * time.Hour)
	r, err := optimizer.NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := optimizer.FlashCrowd(r.Fleet.Network(), crowdAt, 4)
	if err := r.Apply(&sc); err != nil {
		t.Fatal(err)
	}

	// Unlike the cold 107-router build (median link utilization ~2 %),
	// the generated fleet's internal links run at ~30 % of capacity at
	// the median — the paper's §8 cap is already the contended regime, so
	// no artificially tight cap is needed for the surge to force wakes.
	c, err := r.Controller(optimizer.Config{
		Start: start, Window: cfg.Duration, Step: time.Hour,
		MinDwellSteps: 4, MaxUtilization: optimizer.DefaultMaxUtilization,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	if rep.GuardrailViolations != 0 {
		t.Errorf("guardrail violations = %d, want 0 across the surge", rep.GuardrailViolations)
	}
	var before, after *optimizer.StepRecord
	for i := range rep.Steps {
		s := &rep.Steps[i]
		if s.Time.Before(crowdAt) {
			before = s
		} else if after == nil {
			after = s
		}
	}
	if before == nil || after == nil {
		t.Fatal("surge not inside the control window")
	}
	if len(before.Sleeping) == 0 {
		t.Fatal("nothing slept before the surge; scenario proves nothing")
	}
	if len(after.Sleeping) >= len(before.Sleeping) {
		t.Errorf("surge did not reduce sleeping links: %d before, %d after",
			len(before.Sleeping), len(after.Sleeping))
	}
	if len(after.Woke) == 0 {
		t.Error("first post-surge step woke nothing")
	}
}

// TestStructural100k is the continental smoke: build a 100k-router
// network, derive the control plane's topology and traffic view, and
// take one guarded planning step — no fleet, no simulation window, just
// proof that nothing structural (tier split, link derivation, planner
// BFS) breaks at two more orders of magnitude.
func TestStructural100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k structural build in -short mode")
	}
	cfg := ispnet.Config{
		Seed:     42,
		Routers:  100000,
		Start:    start,
		Duration: 2 * time.Hour,
		SNMPStep: time.Hour,
	}
	n, err := ispnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Routers) != cfg.Routers {
		t.Fatalf("built %d routers, want %d", len(n.Routers), cfg.Routers)
	}
	topo, traffic, err := hypnos.FromNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Links) == 0 {
		t.Fatal("100k topology has no internal links")
	}
	if c := hypnos.Components(topo, nil); c != 1 {
		t.Fatalf("100k topology has %d components, want 1", c)
	}

	// No hysteresis: a fresh planner's dwell counters gate the first
	// MinDwellSteps steps, and this smoke takes exactly one step.
	planner, err := hypnos.NewPlanner(topo, hypnos.PlannerOptions{
		MaxUtilization: optimizer.DefaultMaxUtilization,
	})
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, len(topo.Links))
	for i, l := range topo.Links {
		loads[i] = traffic(l.ID, start).BitsPerSecond()
	}
	plan := planner.PlanStep(loads, nil)
	if len(plan.Slept) == 0 {
		t.Error("first control step slept nothing on an idle 100k fleet")
	}
	// The one-step audit, re-derived independently of the planner: the
	// slept set must not split the graph.
	asleep := make([]bool, len(topo.Links))
	for _, id := range plan.Sleeping {
		asleep[id] = true
	}
	if got := hypnos.Components(topo, asleep); got != 1 {
		t.Errorf("100k plan splits the network into %d components", got)
	}
	t.Logf("100k: %d links, slept %d in one step, %d vetoes",
		len(topo.Links), len(plan.Slept), len(plan.Vetoed))
}
