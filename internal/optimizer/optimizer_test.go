package optimizer_test

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/optimizer"
)

var start = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)

func quickCfg() ispnet.Config {
	return ispnet.Config{
		Seed:          42,
		Duration:      3 * 24 * time.Hour,
		SNMPStep:      15 * time.Minute,
		AutopowerStep: 5 * time.Minute,
	}
}

// topoFor builds the controller's observation plane: topology and
// traffic from a pristine build of the config, so the observed load
// model is independent of any actuation on a retained fleet.
func topoFor(t testing.TB, cfg ispnet.Config) (hypnos.Topology, hypnos.TrafficFunc) {
	t.Helper()
	pristine, err := ispnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo, traffic, err := hypnos.FromNetwork(pristine)
	if err != nil {
		t.Fatal(err)
	}
	return topo, traffic
}

// rig builds a retained fleet plus the observation plane and applies a
// scenario's environment events to the baseline, through the package's
// own Rig so the tests exercise the same derivation the artifacts use.
func rig(t testing.TB, cfg ispnet.Config, sc *optimizer.Scenario) (*ispnet.Fleet, hypnos.Topology, hypnos.TrafficFunc) {
	t.Helper()
	r, err := optimizer.NewRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(sc); err != nil {
		t.Fatal(err)
	}
	return r.Fleet, r.Topo, r.Traffic
}

func TestNewValidation(t *testing.T) {
	cfg := quickCfg()
	f, topo, traffic := rig(t, cfg, nil)
	util := optimizer.DefaultMaxUtilization
	if _, err := optimizer.New(nil, topo, traffic, optimizer.Config{Start: start, MaxUtilization: util}); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, err := optimizer.New(f, topo, nil, optimizer.Config{Start: start, MaxUtilization: util}); err == nil {
		t.Error("nil traffic accepted")
	}
	if _, err := optimizer.New(f, topo, traffic, optimizer.Config{MaxUtilization: util}); err == nil {
		t.Error("zero start accepted")
	}
	if _, err := optimizer.New(f, hypnos.Topology{}, traffic, optimizer.Config{Start: start, MaxUtilization: util}); err == nil {
		t.Error("empty topology accepted")
	}

	// The zero-value footgun: ratio knobs the run consumes must be set
	// explicitly — non-positive values are rejected with the sentinel, not
	// silently replaced by the paper defaults.
	for name, bad := range map[string]optimizer.Config{
		"zero MaxUtilization":        {Start: start},
		"negative MaxUtilization":    {Start: start, MaxUtilization: -0.5},
		"PSUShed without PSUMaxLoad": {Start: start, MaxUtilization: util, PSUShed: true},
		"negative PSUMaxLoad":        {Start: start, MaxUtilization: util, PSUShed: true, PSUMaxLoad: -1},
		"negative Window":            {Start: start, MaxUtilization: util, Window: -time.Hour},
		"negative Step":              {Start: start, MaxUtilization: util, Step: -time.Minute},
	} {
		_, err := optimizer.New(f, topo, traffic, bad)
		if !errors.Is(err, optimizer.ErrNonPositiveConfig) {
			t.Errorf("%s: err = %v, want ErrNonPositiveConfig", name, err)
		}
	}
	// PSUMaxLoad is only consumed when PSUShed is on: zero without the
	// pass is fine.
	if _, err := optimizer.New(f, topo, traffic, optimizer.Config{Start: start, MaxUtilization: util}); err != nil {
		t.Errorf("PSUMaxLoad unset without PSUShed rejected: %v", err)
	}
}

// TestStaticTraceMatchesHypnos pins the epsilon-closeness requirement at
// epsilon zero: with no faults and no hysteresis, the controller's
// realized schedule is the §8 hypnos schedule — both drive the same
// Planner over the same observed traffic.
func TestStaticTraceMatchesHypnos(t *testing.T) {
	cfg := quickCfg()
	f, topo, traffic := rig(t, cfg, nil)
	window := 2 * 24 * time.Hour

	c, err := optimizer.New(f, topo, traffic, optimizer.Config{
		Start: start, Window: window, MaxUtilization: optimizer.DefaultMaxUtilization,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	sched, err := hypnos.Run(topo, traffic, hypnos.Options{Start: start, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != len(sched.Sleeping) {
		t.Fatalf("controller took %d steps, hypnos %d", len(rep.Steps), len(sched.Sleeping))
	}
	for i, s := range rep.Steps {
		if !reflect.DeepEqual(s.Sleeping, sched.Sleeping[i]) {
			t.Fatalf("step %d: controller sleeps %v, hypnos %v", i, s.Sleeping, sched.Sleeping[i])
		}
	}

	if rep.GuardrailViolations != 0 {
		t.Errorf("guardrail violations = %d, want 0", rep.GuardrailViolations)
	}
	if rep.Actions == 0 {
		t.Error("controller committed no actions")
	}
	if rep.SleepSavedJoules <= 0 {
		t.Errorf("realized sleep savings = %v, want > 0", rep.SleepSavedJoules)
	}
}

// TestSameSeedSameTrace is the determinism acceptance criterion: two
// full runs — fresh fleets, same seed, same fault storm — produce
// identical decision traces and bit-identical realized joules.
func TestSameSeedSameTrace(t *testing.T) {
	run := func() *optimizer.Report {
		cfg := quickCfg()
		topo0, _ := topoFor(t, cfg)
		sc := optimizer.FaultStorm(topo0, 7, start, cfg.Duration)
		f, topo, traffic := rig(t, cfg, &sc)
		c, err := optimizer.New(f, topo, traffic, optimizer.Config{
			Start: start, Window: 2 * 24 * time.Hour, MinDwellSteps: 4, Down: sc.Down,
			MaxUtilization: optimizer.DefaultMaxUtilization,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Steps, b.Steps) {
		t.Fatal("decision traces differ between same-seed runs")
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("committed event schedules differ between same-seed runs")
	}
	if math.Float64bits(a.SleepSavedJoules.Joules()) != math.Float64bits(b.SleepSavedJoules.Joules()) {
		t.Fatalf("realized joules differ: %v vs %v", a.SleepSavedJoules, b.SleepSavedJoules)
	}
}

// TestColdReplayMatchesIncremental is the replay property extended to
// optimizer-generated events: the controller's whole committed schedule
// (scenario faults, sleeps, wakes, PSU sheds), replayed cold through
// SimulateWithEvents, reproduces the incrementally-resimulated dataset
// bit for bit.
func TestColdReplayMatchesIncremental(t *testing.T) {
	cfg := quickCfg()
	topo0, _ := topoFor(t, cfg)
	sc := optimizer.FaultStorm(topo0, 11, start, cfg.Duration)
	f, topo, traffic := rig(t, cfg, &sc)
	c, err := optimizer.New(f, topo, traffic, optimizer.Config{
		Start: start, Window: 2 * 24 * time.Hour, MinDwellSteps: 4, Down: sc.Down,
		MaxUtilization: optimizer.DefaultMaxUtilization,
		PSUShed:        true, PSUMaxLoad: optimizer.DefaultPSUMaxLoad,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	cold, err := ispnet.SimulateWithEvents(cfg, f.ExtraEvents())
	if err != nil {
		t.Fatal(err)
	}
	if err := ispnet.DiffDatasets(cold, f.Dataset()); err != nil {
		t.Fatal(err)
	}
}

// TestPSUShedSavesEnergy checks the §9.3.4 provisioning pass: redundant
// PSUs are shed where the peak wall draw fits fewer units, and the
// realized wall power drops (fewer, better-loaded supplies convert more
// efficiently).
func TestPSUShedSavesEnergy(t *testing.T) {
	cfg := quickCfg()
	f, topo, traffic := rig(t, cfg, nil)
	c, err := optimizer.New(f, topo, traffic, optimizer.Config{
		Start: start, Window: 24 * time.Hour, MaxUtilization: optimizer.DefaultMaxUtilization,
		PSUShed: true, PSUMaxLoad: optimizer.DefaultPSUMaxLoad,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PSUsShed == 0 {
		t.Fatal("no PSUs shed on the synthetic fleet")
	}
	if rep.PSUSavedJoules <= 0 {
		t.Errorf("PSU shed saved %v, want > 0", rep.PSUSavedJoules)
	}
	if rep.FinalJoules >= rep.SleepJoules {
		t.Errorf("final %v not below sleep-only %v", rep.FinalJoules, rep.SleepJoules)
	}
}
