package optimizer_test

import (
	"testing"
	"time"

	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/optimizer"
)

// TestChaosScenario runs the controller through a fault storm: seeded
// link outages land while the loop is deciding. The acceptance
// invariants: no step blackholes demand (the committed plan never splits
// the graph beyond what the faults already split — zero audit
// violations), down links are never slept fresh, and hysteresis bounds
// oscillation.
func TestChaosScenario(t *testing.T) {
	cfg := quickCfg()
	topo0, _ := topoFor(t, cfg)
	sc := optimizer.FaultStorm(topo0, 7, start, cfg.Duration)
	if len(sc.Events) == 0 {
		t.Fatal("fault storm generated no outages")
	}
	f, topo, traffic := rig(t, cfg, &sc)

	const dwell = 4
	window := 2 * 24 * time.Hour
	c, err := optimizer.New(f, topo, traffic, optimizer.Config{
		Start: start, Window: window, MinDwellSteps: dwell, Down: sc.Down,
		MaxUtilization: optimizer.DefaultMaxUtilization,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	if rep.GuardrailViolations != 0 {
		t.Errorf("guardrail violations = %d, want 0 (blackholed demand or oversubscription)", rep.GuardrailViolations)
	}
	// A freshly slept link is never one whose carrier is down at that
	// step (already-sleeping links may ride out a carrier loss).
	for _, s := range rep.Steps {
		for _, id := range s.Slept {
			if sc.Down(id, s.Time) {
				t.Errorf("step %v sleeps link %d whose carrier is down", s.Time, id)
			}
		}
	}
	// Hysteresis bound: a link transitions at most once per dwell window,
	// plus its initial transition.
	steps := len(rep.Steps)
	maxPerLink := steps/dwell + 1
	perLink := map[int]int{}
	for _, s := range rep.Steps {
		for _, id := range s.Slept {
			perLink[id]++
		}
		for _, id := range s.Woke {
			perLink[id]++
		}
	}
	for id, n := range perLink {
		if n > maxPerLink {
			t.Errorf("link %d transitioned %d times in %d steps (dwell %d allows %d): oscillation",
				id, n, steps, dwell, maxPerLink)
		}
	}
	if rep.Transitions() == 0 {
		t.Error("controller never actuated during the storm")
	}
	if rep.SleepSavedJoules <= 0 {
		t.Errorf("realized savings %v, want > 0 even under faults", rep.SleepSavedJoules)
	}
}

// TestFlashCrowdScenario steps the whole network's offered load mid-run.
// Links slept under the calm load must wake — through the planner's
// re-validation pass — the moment the surge makes their reroute unsafe,
// before any surviving link is pushed past the SLA cap (zero audit
// violations across the surge).
func TestFlashCrowdScenario(t *testing.T) {
	cfg := quickCfg()
	crowdAt := start.Add(36 * time.Hour)
	net, err := ispnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := optimizer.FlashCrowd(net, crowdAt, 4)
	f, topo, traffic := rig(t, cfg, &sc)

	// The synthetic fleet runs cold (median link utilization ~2 %), so a
	// tight SLA cap makes the surge actually contend for headroom — the
	// interesting regime for the wake-before-trip property.
	window := 2 * 24 * time.Hour
	c, err := optimizer.New(f, topo, traffic, optimizer.Config{
		Start: start, Window: window, MinDwellSteps: 4, MaxUtilization: 0.12,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	if rep.GuardrailViolations != 0 {
		t.Errorf("guardrail violations = %d, want 0 across the surge", rep.GuardrailViolations)
	}
	// The surge must force wakes: fewer links sleep right after the step
	// than right before, and the first post-surge step wakes some.
	var before, after *optimizer.StepRecord
	for i := range rep.Steps {
		s := &rep.Steps[i]
		if s.Time.Before(crowdAt) {
			before = s
		} else if after == nil {
			after = s
		}
	}
	if before == nil || after == nil {
		t.Fatal("surge not inside the control window")
	}
	if len(before.Sleeping) == 0 {
		t.Fatal("nothing slept before the surge; scenario proves nothing")
	}
	if len(after.Sleeping) >= len(before.Sleeping) {
		t.Errorf("surge did not reduce sleeping links: %d before, %d after",
			len(before.Sleeping), len(after.Sleeping))
	}
	if len(after.Woke) == 0 {
		t.Error("first post-surge step woke nothing")
	}
}
