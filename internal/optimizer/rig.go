package optimizer

import (
	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
)

// Rig is the scale-agnostic control rig for one fleet config: the
// retained (incrementally resimulable) fleet the controller actuates,
// plus the observation plane — hypnos topology and per-link traffic —
// derived from a pristine build of the same config. The derivation works
// for any ispnet.Config: the calibrated 107-router build and generated
// hierarchical fleets alike (hypnos.FromNetwork walks whatever internal
// links the network has), so "run the closed loop at N routers" is one
// NewRig call away instead of a hand-wired quartet.
type Rig struct {
	Fleet   *ispnet.Fleet
	Topo    hypnos.Topology
	Traffic hypnos.TrafficFunc
}

// NewRig builds the fleet and derives its observation plane. The
// topology and traffic come from a pristine build — not the retained
// (mutated) network — so the observed load model stays independent of
// the controller's own actuation.
func NewRig(cfg ispnet.Config) (*Rig, error) {
	fleet, err := ispnet.NewFleet(cfg)
	if err != nil {
		return nil, err
	}
	pristine, err := ispnet.Build(cfg)
	if err != nil {
		return nil, err
	}
	topo, traffic, err := hypnos.FromNetwork(pristine)
	if err != nil {
		return nil, err
	}
	return &Rig{Fleet: fleet, Topo: topo, Traffic: traffic}, nil
}

// Apply folds a scenario's environment into the rig: its events are
// perturbed and resimulated into the fleet — becoming part of the no-op
// baseline every saving is measured against — and its traffic wrapper
// (if any) reshapes the observed view. Apply before Controller; wire
// the scenario's Down into the controller's Config yourself (it is a
// Config knob, not fleet state).
func (r *Rig) Apply(sc *Scenario) error {
	if sc == nil {
		return nil
	}
	if len(sc.Events) > 0 {
		if err := r.Fleet.Perturb(sc.Events...); err != nil {
			return err
		}
		if _, err := r.Fleet.Resimulate(); err != nil {
			return err
		}
	}
	if sc.WrapTraffic != nil {
		r.Traffic = sc.WrapTraffic(r.Traffic)
	}
	return nil
}

// Controller wires a controller to the rig's fleet and observation
// plane; cfg validates as in New.
func (r *Rig) Controller(cfg Config) (*Controller, error) {
	return New(r.Fleet, r.Topo, r.Traffic, cfg)
}
