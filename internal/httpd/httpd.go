// Package httpd runs the project's HTTP entry points with production
// server hygiene. The cmd binaries used to call bare http.ListenAndServe:
// no header/read/write timeouts (one slow-loris client per connection
// slot), no idle timeout, and no graceful shutdown — a SIGTERM dropped
// every in-flight download. Serve wraps a handler in a configured
// http.Server and drains it cleanly when the context is cancelled.
package httpd

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Config bounds the server's I/O. Zero fields take the listed defaults;
// the zero Config is production-safe.
type Config struct {
	// ReadHeaderTimeout bounds request-header arrival (default 5 s) —
	// the slow-loris guard.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds a full request read (default 30 s).
	ReadTimeout time.Duration
	// WriteTimeout bounds a full response write (default 60 s; trace
	// downloads can be large).
	WriteTimeout time.Duration
	// IdleTimeout closes idle keep-alive connections (default 120 s).
	IdleTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: connections still open past
	// it are closed forcibly (default 10 s).
	DrainTimeout time.Duration
}

func (c *Config) applyDefaults() {
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 60 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// ListenAndServe serves h on addr until ctx is cancelled, then shuts down
// gracefully within the drain deadline. It returns nil after a clean
// drain and the server error otherwise.
func ListenAndServe(ctx context.Context, addr string, h http.Handler, cfg Config) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, ln, h, cfg)
}

// Serve is ListenAndServe on an existing listener, which the server takes
// ownership of. Tests use it with an ephemeral-port listener.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, cfg Config) error {
	cfg.applyDefaults()
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       cfg.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	if err != nil {
		// The drain deadline passed with connections still open; close
		// them forcibly rather than leak the server.
		srv.Close()
		return err
	}
	return nil
}
