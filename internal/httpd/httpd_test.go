package httpd

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func startServer(t *testing.T, h http.Handler, cfg Config) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- Serve(ctx, ln, h, cfg) }()
	return ln.Addr().String(), cancel, errc
}

func TestServeAndGracefulShutdown(t *testing.T) {
	addr, cancel, errc := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}), Config{})

	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("GET = %d %q", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("clean shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after ctx cancel")
	}
}

// TestShutdownDrainsInFlightRequests verifies a request racing the
// shutdown completes instead of being dropped — the graceful-drain
// behaviour bare http.ListenAndServe never had.
func TestShutdownDrainsInFlightRequests(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	addr, cancel, errc := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "drained")
	}), Config{DrainTimeout: 5 * time.Second})

	respc := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err != nil {
			respc <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		respc <- string(body)
	}()
	<-started
	cancel() // shutdown begins with the request in flight
	time.Sleep(20 * time.Millisecond)
	close(release)

	if got := <-respc; got != "drained" {
		t.Errorf("in-flight request got %q", got)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestDrainDeadlineForcesClose verifies a connection that never finishes
// cannot hold shutdown hostage past the drain deadline.
func TestDrainDeadlineForcesClose(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	addr, cancel, errc := startServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hang
	}), Config{DrainTimeout: 50 * time.Millisecond})

	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the request arrive
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("expired drain must report an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve wedged past the drain deadline")
	}
}
