package timeseries

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Columnar chunk codec — the spill format of the streaming fleet
// simulation. A chunk is a self-delimiting block of n points in the
// series' native columnar layout:
//
//	uvarint   point count n
//	varints   timestamps: ts[0], then delta, then delta-of-delta —
//	          a regular sampling grid costs one byte per point
//	n×8 bytes values as little-endian IEEE-754 Float64bits
//
// Values stay raw bits rather than delta-coded: the fleet's power series
// are full-precision float64 and the bit-exactness oracle (DiffDatasets)
// must survive a round trip. Timestamps dominate neither size nor cost.

// AppendChunk appends the chunk encoding of the given timestamp
// (unix-nanosecond) and value columns to dst and returns the extended
// buffer, in the append-style of the standard library. The columns must
// be the same length; chunking a series into fixed-size runs is the
// caller's choice (see Series.Blocks).
//
//joules:hotpath
func AppendChunk(dst []byte, ts []int64, vs []float64) []byte {
	if len(ts) != len(vs) {
		panic(fmt.Sprintf("timeseries: AppendChunk column lengths %d vs %d", len(ts), len(vs)))
	}
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	var prev, prevDelta int64
	for i, t := range ts {
		switch i {
		case 0:
			dst = binary.AppendVarint(dst, t)
		default:
			d := t - prev
			dst = binary.AppendVarint(dst, d-prevDelta)
			prevDelta = d
		}
		prev = t
	}
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeChunk decodes one chunk from data, appends its points to dst, and
// returns the remaining bytes. The append is exact: timestamps and value
// bits round-trip unchanged. Decoding into a series with enough spare
// capacity (NewWithCap, or a Reset series being refilled) allocates
// nothing — the steady-state of a spill reader draining a stream of
// equal-sized chunks. Corrupt or truncated input returns an error and
// leaves dst exactly as it was.
//
//joules:hotpath
func DecodeChunk(dst *Series, data []byte) ([]byte, error) {
	count, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("timeseries: chunk header malformed")
	}
	data = data[k:]
	// Each point costs at least one timestamp byte and eight value bytes;
	// a count beyond that bound is corruption, rejected before any
	// allocation is sized from it.
	if count > uint64(len(data))/9+1 {
		return nil, fmt.Errorf("timeseries: chunk count %d exceeds %d input bytes", count, len(data))
	}
	n := int(count)
	base := len(dst.ts)
	//jouleslint:ignore hotpath -- amortized growth: steady-state spill readers decode into pre-grown capacity (NewWithCap or Reset)
	dst.grow(base + n)
	wasSorted := dst.sorted
	var prev, prevDelta int64
	for i := 0; i < n; i++ {
		v, k := binary.Varint(data)
		if k <= 0 {
			dst.ts = dst.ts[:base]
			dst.sorted = wasSorted
			return nil, fmt.Errorf("timeseries: chunk timestamp %d malformed", i)
		}
		data = data[k:]
		switch i {
		case 0:
			prev = v
		default:
			prevDelta += v
			prev += prevDelta
		}
		if len(dst.ts) == 0 {
			dst.sorted = true
		} else if prev < dst.ts[len(dst.ts)-1] {
			dst.sorted = false
		}
		dst.ts = append(dst.ts, prev)
	}
	if len(data) < 8*n {
		dst.ts = dst.ts[:base]
		dst.sorted = wasSorted
		return nil, fmt.Errorf("timeseries: chunk values truncated: %d bytes for %d points", len(data), n)
	}
	for i := 0; i < n; i++ {
		dst.vs = append(dst.vs, math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:])))
	}
	dst.valsOK = false
	return data[8*n:], nil
}
