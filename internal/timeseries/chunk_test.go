package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// chunkColumns builds an n-point test trace: a regular 5-minute grid with
// occasional jitter, full-range float64 values.
func chunkColumns(n int, seed int64) ([]int64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]int64, n)
	vs := make([]float64, n)
	base := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	for i := range ts {
		ts[i] = base + int64(i)*int64(5*time.Minute)
		if rng.Intn(10) == 0 {
			ts[i] += rng.Int63n(int64(time.Second))
		}
		vs[i] = rng.NormFloat64() * 1e4
	}
	return ts, vs
}

// TestChunkRoundTrip checks a chunk stream round-trips bit-exactly,
// including irregular grids, negative timestamps, and empty chunks.
func TestChunkRoundTrip(t *testing.T) {
	ts, vs := chunkColumns(1000, 7)
	ts[3] = -42 // pre-1970 is legal
	vs[5] = math.Inf(-1)
	vs[6] = math.NaN()

	// Encode in uneven chunks into one buffer.
	var buf []byte
	for _, cut := range [][2]int{{0, 1}, {1, 1}, {1, 400}, {400, 1000}} {
		buf = AppendChunk(buf, ts[cut[0]:cut[1]], vs[cut[0]:cut[1]])
	}

	got := New("decoded")
	rest := buf
	var err error
	for len(rest) > 0 {
		if rest, err = DecodeChunk(got, rest); err != nil {
			t.Fatal(err)
		}
	}
	if got.Len() != len(ts) {
		t.Fatalf("decoded %d points, want %d", got.Len(), len(ts))
	}
	for i := range ts {
		// Compare raw columns (NanoAt would sort; the jittered grid is
		// still ascending here except the injected negative point).
		if got.ts[i] != ts[i] {
			t.Fatalf("point %d timestamp %d, want %d", i, got.ts[i], ts[i])
		}
		if math.Float64bits(got.vs[i]) != math.Float64bits(vs[i]) {
			t.Fatalf("point %d value bits %#x, want %#x", i, math.Float64bits(got.vs[i]), math.Float64bits(vs[i]))
		}
	}
}

// TestDecodeChunkCorrupt checks corrupt inputs fail cleanly and leave the
// destination untouched.
func TestDecodeChunkCorrupt(t *testing.T) {
	ts, vs := chunkColumns(64, 3)
	good := AppendChunk(nil, ts, vs)

	dst := New("dst")
	dst.Append(time.Unix(0, 0), 1)
	for name, data := range map[string][]byte{
		"empty":            {},
		"huge count":       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"truncated mid-ts": good[:2],
		"truncated values": good[:len(good)-9],
	} {
		if _, err := DecodeChunk(dst, data); err == nil {
			t.Errorf("%s: want error", name)
		}
		if dst.Len() != 1 {
			t.Fatalf("%s: corrupt decode mutated dst to %d points", name, dst.Len())
		}
	}
}

// TestDecodeChunkZeroAlloc pins the steady-state decode loop at zero
// allocations: a Reset destination with enough capacity refills from a
// chunk without touching the allocator.
func TestDecodeChunkZeroAlloc(t *testing.T) {
	ts, vs := chunkColumns(1024, 9)
	buf := AppendChunk(nil, ts, vs)
	dst := NewWithCap("scratch", len(ts))
	allocs := testing.AllocsPerRun(100, func() {
		dst.Reset()
		if _, err := DecodeChunk(dst, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeChunk allocates %v times per run, want 0", allocs)
	}
}

// TestAppendBlockAndBlocks checks the bulk append and the zero-copy block
// iteration compose into an exact copy.
func TestAppendBlockAndBlocks(t *testing.T) {
	ts, vs := chunkColumns(777, 11)
	src := New("src")
	src.AppendBlock(ts, vs)
	if src.Len() != len(ts) {
		t.Fatalf("AppendBlock len %d, want %d", src.Len(), len(ts))
	}

	dst := New("dst")
	if err := src.Blocks(100, func(bts []int64, bvs []float64) error {
		dst.AppendBlock(bts, bvs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("blocks copied %d points, want %d", dst.Len(), src.Len())
	}
	for i := 0; i < src.Len(); i++ {
		if src.NanoAt(i) != dst.NanoAt(i) || math.Float64bits(src.Value(i)) != math.Float64bits(dst.Value(i)) {
			t.Fatalf("point %d differs after Blocks/AppendBlock round trip", i)
		}
	}

	// Blocks with size ≤ 0 must hand over everything at once.
	calls := 0
	if err := src.Blocks(0, func(bts []int64, _ []float64) error {
		calls++
		if len(bts) != src.Len() {
			t.Fatalf("size<=0 block has %d points, want %d", len(bts), src.Len())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("size<=0 made %d calls, want 1", calls)
	}
}

// BenchmarkChunkDecode measures the steady-state spill-reader loop: one
// Reset + DecodeChunk of a 1024-point chunk into a reused series.
func BenchmarkChunkDecode(b *testing.B) {
	ts, vs := chunkColumns(1024, 1)
	buf := AppendChunk(nil, ts, vs)
	dst := NewWithCap("scratch", len(ts))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Reset()
		if _, err := DecodeChunk(dst, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkEncode measures AppendChunk into a reused buffer.
func BenchmarkChunkEncode(b *testing.B) {
	ts, vs := chunkColumns(1024, 2)
	buf := AppendChunk(nil, ts, vs)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendChunk(buf[:0], ts, vs)
	}
}
