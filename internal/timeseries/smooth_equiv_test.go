package timeseries

import (
	"math/rand"
	"testing"
	"time"
)

// smoothReference is the pre-columnar Smooth implementation, operating on
// a []Point exactly as the original Series did: the same two-cursor
// running sum, the same time comparisons, the same division. The columnar
// Smooth must reproduce it bit for bit — same sums in the same order —
// so the equivalence tests below compare with ==, not a tolerance.
func smoothReference(pts []Point, window time.Duration) []Point {
	n := len(pts)
	out := make([]Point, n)
	if window <= 0 {
		copy(out, pts)
		return out
	}
	half := window / 2
	lo, hi := 0, 0
	var sum float64
	for i, p := range pts {
		from := p.T.Add(-half)
		to := p.T.Add(half)
		for hi < n && !pts[hi].T.After(to) {
			sum += pts[hi].V
			hi++
		}
		for lo < n && pts[lo].T.Before(from) {
			sum -= pts[lo].V
			lo++
		}
		out[i] = Point{T: p.T, V: sum / float64(hi-lo)}
	}
	return out
}

func TestSmoothMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	windows := []time.Duration{
		0, time.Second, 30 * time.Minute, 2 * time.Hour, 100 * 24 * time.Hour,
		7*time.Minute + 13*time.Second, // odd window: exercises the /2 truncation
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		s := New("rnd")
		tt := base
		for i := 0; i < n; i++ {
			// Irregular spacing, including duplicate timestamps.
			if rng.Float64() < 0.9 {
				tt = tt.Add(time.Duration(rng.Intn(3600)) * time.Second)
			}
			s.Append(tt, rng.NormFloat64()*100)
		}
		pts := s.Points()
		for _, w := range windows {
			want := smoothReference(pts, w)
			got := s.Smooth(w)
			if got.Len() != len(want) {
				t.Fatalf("trial %d window %v: length %d, want %d", trial, w, got.Len(), len(want))
			}
			for i, wp := range want {
				gp := got.At(i)
				if !gp.T.Equal(wp.T) || gp.V != wp.V {
					t.Fatalf("trial %d window %v point %d: got (%v, %v), want (%v, %v)",
						trial, w, i, gp.T, gp.V, wp.T, wp.V)
				}
			}
		}
	}
}

func TestSmoothUnsortedInputMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	s := New("shuffled")
	var pts []Point
	for i := 0; i < 200; i++ {
		p := Point{T: base.Add(time.Duration(rng.Intn(100000)) * time.Second), V: rng.Float64()}
		pts = append(pts, p)
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	for _, p := range pts {
		s.Append(p.T, p.V)
	}
	want := smoothReference(s.Points(), time.Hour) // Points() sorts
	got := s.Smooth(time.Hour)
	for i, wp := range want {
		gp := got.At(i)
		if !gp.T.Equal(wp.T) || gp.V != wp.V {
			t.Fatalf("point %d: got (%v, %v), want (%v, %v)", i, gp.T, gp.V, wp.T, wp.V)
		}
	}
}
