package timeseries

import (
	"math/rand"
	"testing"
	"time"
)

// smoothReference is the pre-columnar Smooth implementation, operating on
// a []Point exactly as the original Series did: the same two-cursor
// running sum, the same time comparisons, the same division. The columnar
// Smooth must reproduce it bit for bit — same sums in the same order —
// so the equivalence tests below compare with ==, not a tolerance.
func smoothReference(pts []Point, window time.Duration) []Point {
	n := len(pts)
	out := make([]Point, n)
	if window <= 0 {
		copy(out, pts)
		return out
	}
	half := window / 2
	lo, hi := 0, 0
	var sum float64
	for i, p := range pts {
		from := p.T.Add(-half)
		to := p.T.Add(half)
		for hi < n && !pts[hi].T.After(to) {
			sum += pts[hi].V
			hi++
		}
		for lo < n && pts[lo].T.Before(from) {
			sum -= pts[lo].V
			lo++
		}
		out[i] = Point{T: p.T, V: sum / float64(hi-lo)}
	}
	return out
}

func TestSmoothMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	windows := []time.Duration{
		0, time.Second, 30 * time.Minute, 2 * time.Hour, 100 * 24 * time.Hour,
		7*time.Minute + 13*time.Second, // odd window: exercises the /2 truncation
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		s := New("rnd")
		tt := base
		for i := 0; i < n; i++ {
			// Irregular spacing, including duplicate timestamps.
			if rng.Float64() < 0.9 {
				tt = tt.Add(time.Duration(rng.Intn(3600)) * time.Second)
			}
			s.Append(tt, rng.NormFloat64()*100)
		}
		pts := s.Points()
		for _, w := range windows {
			want := smoothReference(pts, w)
			got := s.Smooth(w)
			if got.Len() != len(want) {
				t.Fatalf("trial %d window %v: length %d, want %d", trial, w, got.Len(), len(want))
			}
			for i, wp := range want {
				gp := got.At(i)
				if !gp.T.Equal(wp.T) || gp.V != wp.V {
					t.Fatalf("trial %d window %v point %d: got (%v, %v), want (%v, %v)",
						trial, w, i, gp.T, gp.V, wp.T, wp.V)
				}
			}
		}
	}
}

// TestSmoothIntoMatchesSmoothReused drives SmoothInto through one reused
// scratch destination across many random series and windows: every fill
// must be bit-identical to a fresh Smooth of the same input — leftover
// state from the previous, differently-sized fill must never leak.
func TestSmoothIntoMatchesSmoothReused(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	base := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	scratch := New("scratch")
	windows := []time.Duration{0, time.Minute, 30 * time.Minute, 3 * time.Hour}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(300)
		s := NewWithCap("rnd", n)
		tt := base
		for i := 0; i < n; i++ {
			tt = tt.Add(time.Duration(rng.Intn(1800)) * time.Second)
			s.Append(tt, rng.NormFloat64()*50)
		}
		for _, w := range windows {
			want := s.Smooth(w)
			got := s.SmoothInto(w, scratch)
			if got != scratch {
				t.Fatal("SmoothInto did not return its destination")
			}
			if got.Len() != want.Len() {
				t.Fatalf("trial %d window %v: len %d, want %d", trial, w, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if got.NanoAt(i) != want.NanoAt(i) || got.Value(i) != want.Value(i) {
					t.Fatalf("trial %d window %v point %d: got (%d, %v), want (%d, %v)",
						trial, w, i, got.NanoAt(i), got.Value(i), want.NanoAt(i), want.Value(i))
				}
			}
		}
	}
}

// TestIntoVariantsMatchAllocatingReused checks BetweenInto, SubInto, and
// ResampleInto against their allocating counterparts through reused
// destinations, including order statistics on the refilled scratch (the
// value-sorted cache must be invalidated by the reset).
func TestIntoVariantsMatchAllocatingReused(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	base := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	dstA, dstB, dstC := New(""), New(""), New("")
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(200)
		a := NewWithCap("a", n)
		b := NewWithCap("b", n)
		tt := base
		for i := 0; i < n; i++ {
			tt = tt.Add(time.Duration(1+rng.Intn(900)) * time.Second)
			a.Append(tt, rng.NormFloat64()*10)
			b.Append(tt.Add(time.Duration(rng.Intn(60))*time.Second), rng.NormFloat64()*10)
		}
		from := base.Add(time.Duration(rng.Intn(3600)) * time.Second)
		to := from.Add(time.Duration(rng.Intn(48)) * time.Hour)

		want := a.Between(from, to)
		got := a.BetweenInto(from, to, dstA)
		assertSeriesEqual(t, "BetweenInto", got, want)

		wantSub, errW := Sub(a, b)
		gotSub, errG := SubInto(a, b, dstB)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("SubInto error mismatch: %v vs %v", errG, errW)
		}
		if errW == nil {
			assertSeriesEqual(t, "SubInto", gotSub, wantSub)
			if gotSub.Median() != wantSub.Median() {
				t.Fatalf("median on reused destination: %v vs %v", gotSub.Median(), wantSub.Median())
			}
		}

		wantRs, err := a.Resample(17*time.Minute, AggMean)
		if err != nil {
			t.Fatal(err)
		}
		gotRs, err := a.ResampleInto(17*time.Minute, AggMean, dstC)
		if err != nil {
			t.Fatal(err)
		}
		assertSeriesEqual(t, "ResampleInto", gotRs, wantRs)
	}
}

func assertSeriesEqual(t *testing.T, label string, got, want *Series) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: len %d, want %d", label, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.NanoAt(i) != want.NanoAt(i) || got.Value(i) != want.Value(i) {
			t.Fatalf("%s point %d: got (%d, %v), want (%d, %v)",
				label, i, got.NanoAt(i), got.Value(i), want.NanoAt(i), want.Value(i))
		}
	}
}

// TestSmoothIntoZeroAllocSteadyState pins the point of the scratch
// variants: once the destination has grown to the input's size, repeated
// smooths allocate nothing.
func TestSmoothIntoZeroAllocSteadyState(t *testing.T) {
	base := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	s := NewWithCap("steady", 4096)
	for i := 0; i < 4096; i++ {
		s.Append(base.Add(time.Duration(i)*time.Minute), float64(i%97))
	}
	dst := New("scratch")
	s.SmoothInto(30*time.Minute, dst) // warm the destination
	allocs := testing.AllocsPerRun(20, func() {
		s.SmoothInto(30*time.Minute, dst)
	})
	if allocs != 0 {
		t.Fatalf("SmoothInto steady state allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSmoothUnsortedInputMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
	s := New("shuffled")
	var pts []Point
	for i := 0; i < 200; i++ {
		p := Point{T: base.Add(time.Duration(rng.Intn(100000)) * time.Second), V: rng.Float64()}
		pts = append(pts, p)
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	for _, p := range pts {
		s.Append(p.T, p.V)
	}
	want := smoothReference(s.Points(), time.Hour) // Points() sorts
	got := s.Smooth(time.Hour)
	for i, wp := range want {
		gp := got.At(i)
		if !gp.T.Equal(wp.T) || gp.V != wp.V {
			t.Fatalf("point %d: got (%v, %v), want (%v, %v)", i, gp.T, gp.V, wp.T, wp.V)
		}
	}
}
