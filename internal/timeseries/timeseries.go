// Package timeseries provides the trace container shared by the SNMP
// poller, the Autopower measurement system, and the analyses: an ordered
// sequence of (timestamp, value) points with resampling, alignment,
// smoothing, arithmetic, and counter-to-rate conversion.
//
// The paper works with two very different time bases — 5-minute SNMP polls
// and 0.5-second Autopower samples — and repeatedly aligns, averages
// (30-minute smoothing in Fig. 4), and aggregates them (network totals in
// Fig. 1). This package implements those operations once, with explicit
// semantics.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is a single timestamped sample.
type Point struct {
	T time.Time
	V float64
}

// Series is an ordered sequence of points. The zero value is an empty
// series ready to use. Points are kept sorted by time; Append enforces the
// ordering cheaply for the common in-order case.
//
// A Series is not safe for concurrent use: even read methods may fix up
// internal state lazily (time ordering, the value-sorted cache consumed by
// Median and Quantile). Confine a series to one goroutine — as the fleet
// simulation does with its per-router shards — or synchronize externally.
type Series struct {
	Name   string
	points []Point
	sorted bool
	// valsSorted caches the value-sorted samples behind Median and
	// Quantile; Append invalidates it. Reusing the buffer means repeated
	// order statistics on a series with tens of thousands of points cost
	// one sort, not a fresh allocation plus sort per call.
	valsSorted []float64
	valsOK     bool
}

// New returns an empty series with the given name.
func New(name string) *Series {
	return &Series{Name: name, sorted: true}
}

// FromPoints builds a series from a point slice; the points are copied and
// sorted by time.
func FromPoints(name string, pts []Point) *Series {
	s := &Series{Name: name, points: make([]Point, len(pts))}
	copy(s.points, pts)
	sort.Slice(s.points, func(i, j int) bool { return s.points[i].T.Before(s.points[j].T) })
	s.sorted = true
	return s
}

// Append adds a sample. Out-of-order appends are accepted and fixed up
// lazily on the next read.
func (s *Series) Append(t time.Time, v float64) {
	if n := len(s.points); n > 0 && t.Before(s.points[n-1].T) {
		s.sorted = false
	} else if len(s.points) == 0 {
		s.sorted = true
	}
	s.valsOK = false
	s.points = append(s.points, Point{T: t, V: v})
}

func (s *Series) ensureSorted() {
	if s.sorted {
		return
	}
	sort.SliceStable(s.points, func(i, j int) bool { return s.points[i].T.Before(s.points[j].T) })
	s.sorted = true
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// Points returns the underlying points in time order. The returned slice
// must not be modified.
func (s *Series) Points() []Point {
	s.ensureSorted()
	return s.points
}

// At returns the i-th point in time order.
func (s *Series) At(i int) Point {
	s.ensureSorted()
	return s.points[i]
}

// Values returns the values in time order as a fresh slice.
func (s *Series) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.V
	}
	return out
}

// Times returns the timestamps in time order as a fresh slice.
func (s *Series) Times() []time.Time {
	s.ensureSorted()
	out := make([]time.Time, len(s.points))
	for i, p := range s.points {
		out[i] = p.T
	}
	return out
}

// Between returns a new series restricted to points with from ≤ t < to.
func (s *Series) Between(from, to time.Time) *Series {
	s.ensureSorted()
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].T.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return !s.points[i].T.Before(to) })
	out := &Series{Name: s.Name, sorted: true}
	out.points = append(out.points, s.points[lo:hi]...)
	return out
}

// Mean returns the mean value of the series, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// sortedValues returns the series values sorted ascending, (re)building
// the cached scratch buffer only when Append has invalidated it. The
// returned slice is owned by the series and must not be modified.
func (s *Series) sortedValues() []float64 {
	if !s.valsOK {
		if cap(s.valsSorted) < len(s.points) {
			s.valsSorted = make([]float64, len(s.points))
		}
		s.valsSorted = s.valsSorted[:len(s.points)]
		for i, p := range s.points {
			s.valsSorted[i] = p.V
		}
		sort.Float64s(s.valsSorted)
		s.valsOK = true
	}
	return s.valsSorted
}

// Median returns the median value of the series, or 0 if empty.
func (s *Series) Median() float64 {
	if len(s.points) == 0 {
		return 0
	}
	vs := s.sortedValues()
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the series values using
// linear interpolation between order statistics — the same estimator as
// stats.Quantile — or 0 for an empty series. Repeated calls reuse the
// cached sorted values.
func (s *Series) Quantile(q float64) float64 {
	n := len(s.points)
	if n == 0 {
		return 0
	}
	vs := s.sortedValues()
	if q <= 0 {
		return vs[0]
	}
	if q >= 1 {
		return vs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vs[lo]
	}
	frac := pos - float64(lo)
	return vs[lo]*(1-frac) + vs[hi]*frac
}

// Min returns the minimum value, or +Inf if the series is empty.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, p := range s.points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Max returns the maximum value, or -Inf if the series is empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Scale returns a new series with every value multiplied by f.
func (s *Series) Scale(f float64) *Series {
	s.ensureSorted()
	out := &Series{Name: s.Name, sorted: true, points: make([]Point, len(s.points))}
	for i, p := range s.points {
		out.points[i] = Point{T: p.T, V: p.V * f}
	}
	return out
}

// Shift returns a new series with the constant delta added to every value.
// It is used to offset model predictions to measurement level (Fig. 9).
func (s *Series) Shift(delta float64) *Series {
	s.ensureSorted()
	out := &Series{Name: s.Name, sorted: true, points: make([]Point, len(s.points))}
	for i, p := range s.points {
		out.points[i] = Point{T: p.T, V: p.V + delta}
	}
	return out
}

// Aggregator combines the samples that fall into one resampling bucket.
type Aggregator func(vs []float64) float64

// AggMean averages the bucket samples.
func AggMean(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// AggSum sums the bucket samples.
func AggSum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// AggMax keeps the maximum bucket sample.
func AggMax(vs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// AggLast keeps the last bucket sample (gauge semantics).
func AggLast(vs []float64) float64 { return vs[len(vs)-1] }

// Resample buckets the series into windows of the given step, aggregating
// each bucket with agg. The resulting points are stamped at bucket starts
// (truncated to the step). Empty buckets produce no point. A non-positive
// step is an error.
func (s *Series) Resample(step time.Duration, agg Aggregator) (*Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive resample step %v", step)
	}
	s.ensureSorted()
	out := New(s.Name)
	var bucket []float64
	var bucketStart time.Time
	flush := func() {
		if len(bucket) > 0 {
			out.Append(bucketStart, agg(bucket))
			bucket = bucket[:0]
		}
	}
	for _, p := range s.points {
		bs := p.T.Truncate(step)
		if len(bucket) > 0 && !bs.Equal(bucketStart) {
			flush()
		}
		bucketStart = bs
		bucket = append(bucket, p.V)
	}
	flush()
	return out, nil
}

// Smooth returns a centered moving average over the given time window: the
// value at each point becomes the mean of all samples within ±window/2.
// This is the 30-minute smoothing applied to the Fig. 4 traces.
func (s *Series) Smooth(window time.Duration) *Series {
	s.ensureSorted()
	out := &Series{Name: s.Name, sorted: true, points: make([]Point, len(s.points))}
	if window <= 0 {
		copy(out.points, s.points)
		return out
	}
	half := window / 2
	n := len(s.points)
	lo, hi := 0, 0
	var sum float64
	for i, p := range s.points {
		from := p.T.Add(-half)
		to := p.T.Add(half)
		for hi < n && !s.points[hi].T.After(to) {
			sum += s.points[hi].V
			hi++
		}
		for lo < n && s.points[lo].T.Before(from) {
			sum -= s.points[lo].V
			lo++
		}
		out.points[i] = Point{T: p.T, V: sum / float64(hi-lo)}
	}
	return out
}

// ErrNoOverlap is returned by alignment operations when the inputs share no
// common time range.
var ErrNoOverlap = errors.New("timeseries: series do not overlap in time")

// SumAligned sums multiple series after resampling each onto the common
// step (mean-aggregated). Buckets missing from any series carry that
// series' nearest earlier value (sample-and-hold), so that devices that
// report at slightly different instants still sum correctly; series
// contribute nothing before their first sample and hold their last value to
// the end. The result spans the union of the input ranges. It returns an
// error when called with no series or a non-positive step.
func SumAligned(name string, step time.Duration, series ...*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, errors.New("timeseries: SumAligned requires at least one series")
	}
	if step <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive step %v", step)
	}
	type resampled struct {
		pts []Point
		idx int
	}
	rs := make([]resampled, 0, len(series))
	var start, end time.Time
	first := true
	for _, s := range series {
		r, err := s.Resample(step, AggMean)
		if err != nil {
			return nil, err
		}
		if r.Len() == 0 {
			continue
		}
		pts := r.Points()
		if first {
			start, end = pts[0].T, pts[len(pts)-1].T
			first = false
		} else {
			if pts[0].T.Before(start) {
				start = pts[0].T
			}
			if pts[len(pts)-1].T.After(end) {
				end = pts[len(pts)-1].T
			}
		}
		rs = append(rs, resampled{pts: pts})
	}
	out := New(name)
	if first { // every series was empty
		return out, nil
	}
	for t := start; !t.After(end); t = t.Add(step) {
		var sum float64
		for i := range rs {
			r := &rs[i]
			for r.idx+1 < len(r.pts) && !r.pts[r.idx+1].T.After(t) {
				r.idx++
			}
			if r.pts[r.idx].T.After(t) {
				continue // before this series' first sample
			}
			sum += r.pts[r.idx].V
		}
		out.Append(t, sum)
	}
	return out, nil
}

// Sub returns a-b on a's timestamps, matching each point of a with the
// nearest-earlier point of b (sample-and-hold). Points of a before b's
// first sample are dropped. It returns ErrNoOverlap when nothing matches.
func Sub(a, b *Series) (*Series, error) {
	a.ensureSorted()
	b.ensureSorted()
	out := New(a.Name + "-" + b.Name)
	bp := b.Points()
	if len(bp) == 0 {
		return nil, ErrNoOverlap
	}
	j := 0
	for _, p := range a.Points() {
		for j+1 < len(bp) && !bp[j+1].T.After(p.T) {
			j++
		}
		if bp[j].T.After(p.T) {
			continue
		}
		out.Append(p.T, p.V-bp[j].V)
	}
	if out.Len() == 0 {
		return nil, ErrNoOverlap
	}
	return out, nil
}

// IntegratePower integrates a power series (values in watts) over time by
// the trapezoid rule and returns joules. Series with fewer than two points
// integrate to zero.
func IntegratePower(s *Series) float64 {
	pts := s.Points()
	var joules float64
	for i := 1; i < len(pts); i++ {
		dt := pts[i].T.Sub(pts[i-1].T).Seconds()
		if dt <= 0 {
			continue
		}
		joules += (pts[i].V + pts[i-1].V) / 2 * dt
	}
	return joules
}

// CounterToRate converts a monotonically increasing counter series (e.g.
// SNMP ifHCInOctets) into a per-second rate series. Each output point is
// stamped at the end of its interval. Counter wraps are handled for the
// given bit width (32 or 64); any other width is an error. Counter resets
// (decreases too large to be a wrap, i.e. more than half the counter range)
// produce no output point for that interval.
func CounterToRate(s *Series, bits int) (*Series, error) {
	if bits != 32 && bits != 64 {
		return nil, fmt.Errorf("timeseries: unsupported counter width %d", bits)
	}
	s.ensureSorted()
	out := New(s.Name + ".rate")
	pts := s.Points()
	var modulus float64
	if bits == 32 {
		modulus = math.Pow(2, 32)
	} else {
		modulus = math.Pow(2, 64)
	}
	for i := 1; i < len(pts); i++ {
		dt := pts[i].T.Sub(pts[i-1].T).Seconds()
		if dt <= 0 {
			continue
		}
		dv := pts[i].V - pts[i-1].V
		if dv < 0 {
			wrapped := dv + modulus
			if wrapped > modulus/2 {
				// Too large to be a plausible wrap: treat as reset.
				continue
			}
			dv = wrapped
		}
		out.Append(pts[i].T, dv/dt)
	}
	return out, nil
}
