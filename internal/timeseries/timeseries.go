// Package timeseries provides the trace container shared by the SNMP
// poller, the Autopower measurement system, and the analyses: an ordered
// sequence of (timestamp, value) points with resampling, alignment,
// smoothing, arithmetic, and counter-to-rate conversion.
//
// The paper works with two very different time bases — 5-minute SNMP polls
// and 0.5-second Autopower samples — and repeatedly aligns, averages
// (30-minute smoothing in Fig. 4), and aggregates them (network totals in
// Fig. 1). This package implements those operations once, with explicit
// semantics.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is a single timestamped sample.
type Point struct {
	T time.Time
	V float64
}

// Series is an ordered sequence of points. The zero value is an empty
// series ready to use. Points are kept sorted by time; Append enforces the
// ordering cheaply for the common in-order case.
//
// Storage is columnar — one []int64 of unix-nanosecond timestamps beside
// one []float64 of values — so the fleet simulation's hot append loop
// touches two flat arrays instead of a slice of structs, the value
// operations (Mean, Smooth, the order statistics) scan a contiguous
// float64 array, and a capacity hint (NewWithCap) makes a full trace a
// single allocation per column. Timestamps therefore live in the unix-nano
// range (years 1678–2262); accessors return them in UTC.
//
// A Series is not safe for concurrent use: even read methods may fix up
// internal state lazily (time ordering, the value-sorted cache consumed by
// Median and Quantile). Confine a series to one goroutine — as the fleet
// simulation does with its per-router shards — or synchronize externally.
type Series struct {
	Name string
	ts   []int64 // unix nanoseconds, ascending once sorted
	vs   []float64
	// sorted records whether ts is currently ascending; Append clears it
	// only when an out-of-order sample arrives.
	sorted bool
	// valsSorted caches the value-sorted samples behind Median and
	// Quantile; Append invalidates it. Reusing the buffer means repeated
	// order statistics on a series with tens of thousands of points cost
	// one sort, not a fresh allocation plus sort per call.
	valsSorted []float64
	valsOK     bool
}

// New returns an empty series with the given name.
func New(name string) *Series {
	return &Series{Name: name, sorted: true}
}

// NewWithCap returns an empty series preallocated for n points. Callers
// that know their sample count up front — the fleet replay knows its step
// grid exactly — avoid every growth reallocation of the append path.
func NewWithCap(name string, n int) *Series {
	if n < 0 {
		n = 0
	}
	return &Series{
		Name:   name,
		sorted: true,
		ts:     make([]int64, 0, n),
		vs:     make([]float64, 0, n),
	}
}

// FromPoints builds a series from a point slice; the points are copied and
// sorted by time.
func FromPoints(name string, pts []Point) *Series {
	s := NewWithCap(name, len(pts))
	for _, p := range pts {
		s.Append(p.T, p.V)
	}
	s.ensureSorted()
	return s
}

// Append adds a sample. Out-of-order appends are accepted and fixed up
// lazily on the next read.
func (s *Series) Append(t time.Time, v float64) {
	s.appendNano(t.UnixNano(), v)
}

func (s *Series) appendNano(ns int64, v float64) {
	if n := len(s.ts); n > 0 && ns < s.ts[n-1] {
		s.sorted = false
	} else if len(s.ts) == 0 {
		s.sorted = true
	}
	s.valsOK = false
	s.ts = append(s.ts, ns)
	s.vs = append(s.vs, v)
}

// AppendBlock appends parallel timestamp (unix-nanosecond) and value
// columns in one call — the bulk form of Append used by spill readers
// reassembling a series from decoded chunks. The columns must be the same
// length; ordering is fixed up lazily exactly as for Append.
func (s *Series) AppendBlock(ts []int64, vs []float64) {
	if len(ts) != len(vs) {
		panic(fmt.Sprintf("timeseries: AppendBlock column lengths %d vs %d", len(ts), len(vs)))
	}
	s.grow(len(s.ts) + len(ts))
	for i, ns := range ts {
		s.appendNano(ns, vs[i])
	}
}

// Blocks calls fn over the series in time order, in runs of at most size
// points (size ≤ 0 means one run covering everything). The slices passed
// to fn alias the series' internal columns: they are valid only for the
// duration of the call and must not be mutated. It is the zero-copy
// iteration the streaming spill path uses to chunk a trace.
func (s *Series) Blocks(size int, fn func(ts []int64, vs []float64) error) error {
	s.ensureSorted()
	if size <= 0 {
		size = len(s.ts)
		if size == 0 {
			return nil
		}
	}
	for i := 0; i < len(s.ts); i += size {
		j := i + size
		if j > len(s.ts) {
			j = len(s.ts)
		}
		if err := fn(s.ts[i:j], s.vs[i:j]); err != nil {
			return err
		}
	}
	return nil
}

// byTime sorts the two columns together, stably, by timestamp.
type byTime struct{ s *Series }

func (b byTime) Len() int           { return len(b.s.ts) }
func (b byTime) Less(i, j int) bool { return b.s.ts[i] < b.s.ts[j] }
func (b byTime) Swap(i, j int) {
	b.s.ts[i], b.s.ts[j] = b.s.ts[j], b.s.ts[i]
	b.s.vs[i], b.s.vs[j] = b.s.vs[j], b.s.vs[i]
}

func (s *Series) ensureSorted() {
	if s.sorted {
		return
	}
	sort.Stable(byTime{s})
	s.sorted = true
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.ts) }

// reset empties the series for reuse under a new name, keeping the
// backing arrays so refilling to a similar length allocates nothing.
// Every *Into operation starts with a reset of its destination.
func (s *Series) reset(name string) {
	s.Name = name
	s.ts = s.ts[:0]
	s.vs = s.vs[:0]
	s.sorted = true
	s.valsOK = false
}

// Reset empties the series for reuse, keeping its backing capacity. It
// is the public entry point for scratch-buffer owners (the experiments
// suite's arena); the *Into operations reset their destination
// themselves.
func (s *Series) Reset() { s.reset(s.Name) }

// grow ensures the value column (and timestamp column) can hold n
// points without reallocation, preserving current contents.
func (s *Series) grow(n int) {
	if cap(s.ts) < n {
		ts := make([]int64, len(s.ts), n)
		copy(ts, s.ts)
		s.ts = ts
	}
	if cap(s.vs) < n {
		vs := make([]float64, len(s.vs), n)
		copy(vs, s.vs)
		s.vs = vs
	}
}

// At returns the i-th point in time order.
func (s *Series) At(i int) Point {
	s.ensureSorted()
	return Point{T: time.Unix(0, s.ts[i]).UTC(), V: s.vs[i]}
}

// Value returns the i-th value in time order without materializing the
// timestamp — the accessor for value-only scans.
func (s *Series) Value(i int) float64 {
	s.ensureSorted()
	return s.vs[i]
}

// TimeAt returns the i-th timestamp in time order (in UTC).
func (s *Series) TimeAt(i int) time.Time {
	s.ensureSorted()
	return time.Unix(0, s.ts[i]).UTC()
}

// NanoAt returns the i-th timestamp in time order as unix nanoseconds —
// the allocation-free accessor for hot loops that only compare clocks.
func (s *Series) NanoAt(i int) int64 {
	s.ensureSorted()
	return s.ts[i]
}

// Points returns the points in time order. With columnar storage the
// slice is materialized fresh on every call; iterate with Len/At/Value on
// hot paths.
func (s *Series) Points() []Point {
	s.ensureSorted()
	out := make([]Point, len(s.ts))
	for i, ns := range s.ts {
		out[i] = Point{T: time.Unix(0, ns).UTC(), V: s.vs[i]}
	}
	return out
}

// Values returns the values in time order as a fresh slice.
func (s *Series) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.vs))
	copy(out, s.vs)
	return out
}

// Times returns the timestamps in time order as a fresh slice.
func (s *Series) Times() []time.Time {
	s.ensureSorted()
	out := make([]time.Time, len(s.ts))
	for i, ns := range s.ts {
		out[i] = time.Unix(0, ns).UTC()
	}
	return out
}

// Between returns a new series restricted to points with from ≤ t < to.
func (s *Series) Between(from, to time.Time) *Series {
	return s.BetweenInto(from, to, New(s.Name))
}

// BetweenInto is Between writing into dst instead of allocating: dst is
// reset (keeping its backing capacity) and filled with the points in
// [from, to). It returns dst. dst must not alias s. The values are
// bit-identical to Between's.
func (s *Series) BetweenInto(from, to time.Time, dst *Series) *Series {
	s.ensureSorted()
	fromNs, toNs := from.UnixNano(), to.UnixNano()
	lo := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= fromNs })
	hi := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= toNs })
	dst.reset(s.Name)
	dst.grow(hi - lo)
	dst.ts = append(dst.ts, s.ts[lo:hi]...)
	dst.vs = append(dst.vs, s.vs[lo:hi]...)
	return dst
}

// Clone returns an independent copy of the series under the given name (""
// keeps the original name).
func (s *Series) Clone(name string) *Series {
	s.ensureSorted()
	if name == "" {
		name = s.Name
	}
	out := NewWithCap(name, len(s.ts))
	out.ts = append(out.ts, s.ts...)
	out.vs = append(out.vs, s.vs...)
	return out
}

// Mean returns the mean value of the series, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vs {
		sum += v
	}
	return sum / float64(len(s.vs))
}

// sortedValues returns the series values sorted ascending, (re)building
// the cached scratch buffer only when Append has invalidated it. The
// returned slice is owned by the series and must not be modified.
func (s *Series) sortedValues() []float64 {
	if !s.valsOK {
		if cap(s.valsSorted) < len(s.vs) {
			s.valsSorted = make([]float64, len(s.vs))
		}
		s.valsSorted = s.valsSorted[:len(s.vs)]
		copy(s.valsSorted, s.vs)
		sort.Float64s(s.valsSorted)
		s.valsOK = true
	}
	return s.valsSorted
}

// Median returns the median value of the series, or 0 if empty.
func (s *Series) Median() float64 {
	if len(s.vs) == 0 {
		return 0
	}
	vs := s.sortedValues()
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the series values using
// linear interpolation between order statistics — the same estimator as
// stats.Quantile — or 0 for an empty series. Repeated calls reuse the
// cached sorted values.
func (s *Series) Quantile(q float64) float64 {
	n := len(s.vs)
	if n == 0 {
		return 0
	}
	vs := s.sortedValues()
	if q <= 0 {
		return vs[0]
	}
	if q >= 1 {
		return vs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vs[lo]
	}
	frac := pos - float64(lo)
	return vs[lo]*(1-frac) + vs[hi]*frac
}

// Min returns the minimum value, or +Inf if the series is empty.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.vs {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value, or -Inf if the series is empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.vs {
		if v > m {
			m = v
		}
	}
	return m
}

// Scale returns a new series with every value multiplied by f.
func (s *Series) Scale(f float64) *Series {
	s.ensureSorted()
	out := NewWithCap(s.Name, len(s.ts))
	out.ts = append(out.ts, s.ts...)
	for _, v := range s.vs {
		out.vs = append(out.vs, v*f)
	}
	return out
}

// Shift returns a new series with the constant delta added to every value.
// It is used to offset model predictions to measurement level (Fig. 9).
func (s *Series) Shift(delta float64) *Series {
	s.ensureSorted()
	out := NewWithCap(s.Name, len(s.ts))
	out.ts = append(out.ts, s.ts...)
	for _, v := range s.vs {
		out.vs = append(out.vs, v+delta)
	}
	return out
}

// Aggregator combines the samples that fall into one resampling bucket.
type Aggregator func(vs []float64) float64

// AggMean averages the bucket samples.
func AggMean(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// AggSum sums the bucket samples.
func AggSum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// AggMax keeps the maximum bucket sample.
func AggMax(vs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// AggLast keeps the last bucket sample (gauge semantics).
func AggLast(vs []float64) float64 { return vs[len(vs)-1] }

// Resample buckets the series into windows of the given step, aggregating
// each bucket with agg. The resulting points are stamped at bucket starts
// (truncated to the step). Empty buckets produce no point. A non-positive
// step is an error.
func (s *Series) Resample(step time.Duration, agg Aggregator) (*Series, error) {
	return s.ResampleInto(step, agg, New(s.Name))
}

// ResampleInto is Resample writing into dst instead of allocating a new
// series: dst is reset (keeping its backing capacity) and filled with
// the aggregated buckets. It returns dst. dst must not alias s. A small
// per-call bucket buffer is still allocated; the column arrays — the
// bulk of a resample's footprint — are reused.
func (s *Series) ResampleInto(step time.Duration, agg Aggregator, dst *Series) (*Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive resample step %v", step)
	}
	s.ensureSorted()
	out := dst
	out.reset(s.Name)
	var bucket []float64
	var bucketStart int64
	flush := func() {
		if len(bucket) > 0 {
			out.appendNano(bucketStart, agg(bucket))
			bucket = bucket[:0]
		}
	}
	for i, ns := range s.ts {
		bs := time.Unix(0, ns).Truncate(step).UnixNano()
		if len(bucket) > 0 && bs != bucketStart {
			flush()
		}
		bucketStart = bs
		bucket = append(bucket, s.vs[i])
	}
	flush()
	return out, nil
}

// Smooth returns a centered moving average over the given time window: the
// value at each point becomes the mean of all samples within ±window/2.
// This is the 30-minute smoothing applied to the Fig. 4 traces. The
// implementation is a single O(n) sliding-window pass — a running sum
// advanced by two monotone cursors — over the columnar arrays, with the
// output preallocated to the input length.
func (s *Series) Smooth(window time.Duration) *Series {
	return s.SmoothInto(window, New(s.Name))
}

// SmoothInto is Smooth writing into dst instead of allocating: dst is
// reset (keeping its backing capacity) and filled with the smoothed
// points. It returns dst. dst must not alias s — the sliding window
// re-reads input values both behind and ahead of the write cursor, so
// an in-place smooth would consume its own output. The values are
// bit-identical to Smooth's: same running sum, same division.
func (s *Series) SmoothInto(window time.Duration, dst *Series) *Series {
	s.ensureSorted()
	n := len(s.ts)
	dst.reset(s.Name)
	dst.grow(n)
	dst.ts = append(dst.ts, s.ts...)
	dst.vs = dst.vs[:n]
	if window <= 0 {
		copy(dst.vs, s.vs)
		return dst
	}
	half := int64(window / 2)
	lo, hi := 0, 0
	var sum float64
	for i, ns := range s.ts {
		from := ns - half
		to := ns + half
		for hi < n && s.ts[hi] <= to {
			sum += s.vs[hi]
			hi++
		}
		for lo < n && s.ts[lo] < from {
			sum -= s.vs[lo]
			lo++
		}
		dst.vs[i] = sum / float64(hi-lo)
	}
	return dst
}

// ErrNoOverlap is returned by alignment operations when the inputs share no
// common time range.
var ErrNoOverlap = errors.New("timeseries: series do not overlap in time")

// SumAligned sums multiple series after resampling each onto the common
// step (mean-aggregated). Buckets missing from any series carry that
// series' nearest earlier value (sample-and-hold), so that devices that
// report at slightly different instants still sum correctly; series
// contribute nothing before their first sample and hold their last value to
// the end. The result spans the union of the input ranges. It returns an
// error when called with no series or a non-positive step.
func SumAligned(name string, step time.Duration, series ...*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, errors.New("timeseries: SumAligned requires at least one series")
	}
	if step <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive step %v", step)
	}
	type resampled struct {
		ts  []int64
		vs  []float64
		idx int
	}
	rs := make([]resampled, 0, len(series))
	var start, end int64
	first := true
	for _, s := range series {
		r, err := s.Resample(step, AggMean)
		if err != nil {
			return nil, err
		}
		if r.Len() == 0 {
			continue
		}
		if first {
			start, end = r.ts[0], r.ts[len(r.ts)-1]
			first = false
		} else {
			if r.ts[0] < start {
				start = r.ts[0]
			}
			if r.ts[len(r.ts)-1] > end {
				end = r.ts[len(r.ts)-1]
			}
		}
		rs = append(rs, resampled{ts: r.ts, vs: r.vs})
	}
	out := New(name)
	if first { // every series was empty
		return out, nil
	}
	stepNs := int64(step)
	if stepNs > 0 {
		out.ts = make([]int64, 0, (end-start)/stepNs+1)
		out.vs = make([]float64, 0, (end-start)/stepNs+1)
	}
	for t := start; t <= end; t += stepNs {
		var sum float64
		for i := range rs {
			r := &rs[i]
			for r.idx+1 < len(r.ts) && r.ts[r.idx+1] <= t {
				r.idx++
			}
			if r.ts[r.idx] > t {
				continue // before this series' first sample
			}
			sum += r.vs[r.idx]
		}
		out.appendNano(t, sum)
	}
	return out, nil
}

// Sub returns a-b on a's timestamps, matching each point of a with the
// nearest-earlier point of b (sample-and-hold). Points of a before b's
// first sample are dropped. It returns ErrNoOverlap when nothing matches.
func Sub(a, b *Series) (*Series, error) {
	return SubInto(a, b, New(""))
}

// SubInto is Sub writing into dst instead of allocating: dst is reset
// (keeping its backing capacity) and filled with the matched
// differences. It returns dst. dst must alias neither input. The values
// are bit-identical to Sub's.
func SubInto(a, b, dst *Series) (*Series, error) {
	a.ensureSorted()
	b.ensureSorted()
	if len(b.ts) == 0 {
		return nil, ErrNoOverlap
	}
	out := dst
	out.reset(a.Name + "-" + b.Name)
	out.grow(len(a.ts))
	j := 0
	for i, ns := range a.ts {
		for j+1 < len(b.ts) && b.ts[j+1] <= ns {
			j++
		}
		if b.ts[j] > ns {
			continue
		}
		out.appendNano(ns, a.vs[i]-b.vs[j])
	}
	if out.Len() == 0 {
		return nil, ErrNoOverlap
	}
	return out, nil
}

// IntegratePower integrates a power series (values in watts) over time by
// the trapezoid rule and returns joules. Series with fewer than two points
// integrate to zero.
func IntegratePower(s *Series) float64 {
	s.ensureSorted()
	var joules float64
	for i := 1; i < len(s.ts); i++ {
		dt := time.Duration(s.ts[i] - s.ts[i-1]).Seconds()
		if dt <= 0 {
			continue
		}
		joules += (s.vs[i] + s.vs[i-1]) / 2 * dt
	}
	return joules
}

// CounterToRate converts a monotonically increasing counter series (e.g.
// SNMP ifHCInOctets) into a per-second rate series. Each output point is
// stamped at the end of its interval. Counter wraps are handled for the
// given bit width (32 or 64); any other width is an error. Counter resets
// (decreases too large to be a wrap, i.e. more than half the counter range)
// produce no output point for that interval.
func CounterToRate(s *Series, bits int) (*Series, error) {
	if bits != 32 && bits != 64 {
		return nil, fmt.Errorf("timeseries: unsupported counter width %d", bits)
	}
	s.ensureSorted()
	out := NewWithCap(s.Name+".rate", s.Len())
	var modulus float64
	if bits == 32 {
		modulus = math.Pow(2, 32)
	} else {
		modulus = math.Pow(2, 64)
	}
	for i := 1; i < len(s.ts); i++ {
		dt := time.Duration(s.ts[i] - s.ts[i-1]).Seconds()
		if dt <= 0 {
			continue
		}
		dv := s.vs[i] - s.vs[i-1]
		if dv < 0 {
			wrapped := dv + modulus
			if wrapped > modulus/2 {
				// Too large to be a plausible wrap: treat as reset.
				continue
			}
			dv = wrapped
		}
		out.appendNano(s.ts[i], dv/dt)
	}
	return out, nil
}
