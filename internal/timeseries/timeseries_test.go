package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)

func mk(name string, vals ...float64) *Series {
	s := New(name)
	for i, v := range vals {
		s.Append(t0.Add(time.Duration(i)*time.Minute), v)
	}
	return s
}

func TestAppendOutOfOrder(t *testing.T) {
	s := New("x")
	s.Append(t0.Add(2*time.Minute), 3)
	s.Append(t0, 1)
	s.Append(t0.Add(time.Minute), 2)
	vs := s.Values()
	for i, want := range []float64{1, 2, 3} {
		if vs[i] != want {
			t.Fatalf("Values() = %v, want sorted [1 2 3]", vs)
		}
	}
}

func TestFromPointsSorts(t *testing.T) {
	pts := []Point{{t0.Add(time.Hour), 2}, {t0, 1}}
	s := FromPoints("x", pts)
	if s.At(0).V != 1 || s.At(1).V != 2 {
		t.Errorf("FromPoints did not sort: %v", s.Points())
	}
	// Input must not be aliased.
	pts[0].V = 99
	if s.At(1).V == 99 {
		t.Error("FromPoints aliased its input")
	}
}

func TestBetween(t *testing.T) {
	s := mk("x", 1, 2, 3, 4, 5)
	got := s.Between(t0.Add(time.Minute), t0.Add(3*time.Minute))
	if got.Len() != 2 || got.At(0).V != 2 || got.At(1).V != 3 {
		t.Errorf("Between = %v", got.Points())
	}
	if s.Between(t0.Add(time.Hour), t0.Add(2*time.Hour)).Len() != 0 {
		t.Error("Between outside range must be empty")
	}
}

func TestSummaryStats(t *testing.T) {
	s := mk("x", 4, 1, 3, 2)
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Median() != 2.5 {
		t.Errorf("Median = %v", s.Median())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	empty := New("e")
	if empty.Mean() != 0 || empty.Median() != 0 {
		t.Error("empty series stats must be 0")
	}
	if !math.IsInf(empty.Min(), 1) || !math.IsInf(empty.Max(), -1) {
		t.Error("empty Min/Max must be ±Inf")
	}
}

func TestScaleShift(t *testing.T) {
	s := mk("x", 1, 2)
	sc := s.Scale(10)
	if sc.At(0).V != 10 || sc.At(1).V != 20 {
		t.Errorf("Scale = %v", sc.Points())
	}
	sh := s.Shift(-1)
	if sh.At(0).V != 0 || sh.At(1).V != 1 {
		t.Errorf("Shift = %v", sh.Points())
	}
	if s.At(0).V != 1 {
		t.Error("Scale/Shift must not modify the receiver")
	}
}

func TestResample(t *testing.T) {
	s := New("x")
	// Two samples in minute 0, one in minute 2; minute 1 empty.
	s.Append(t0.Add(10*time.Second), 1)
	s.Append(t0.Add(50*time.Second), 3)
	s.Append(t0.Add(2*time.Minute+5*time.Second), 10)
	r, err := s.Resample(time.Minute, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Resample len = %d, want 2 (empty buckets skipped)", r.Len())
	}
	if r.At(0).V != 2 || !r.At(0).T.Equal(t0) {
		t.Errorf("bucket 0 = %v", r.At(0))
	}
	if r.At(1).V != 10 || !r.At(1).T.Equal(t0.Add(2*time.Minute)) {
		t.Errorf("bucket 1 = %v", r.At(1))
	}
	if _, err := s.Resample(0, AggMean); err == nil {
		t.Error("zero step must error")
	}
}

func TestAggregators(t *testing.T) {
	vs := []float64{1, 5, 3}
	if AggMean(vs) != 3 {
		t.Error("AggMean")
	}
	if AggSum(vs) != 9 {
		t.Error("AggSum")
	}
	if AggMax(vs) != 5 {
		t.Error("AggMax")
	}
	if AggLast(vs) != 3 {
		t.Error("AggLast")
	}
}

func TestSmoothConstantInvariant(t *testing.T) {
	f := func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Mod(v, 1e9)
		s := New("c")
		for i := 0; i < int(n)+1; i++ {
			s.Append(t0.Add(time.Duration(i)*time.Second), v)
		}
		sm := s.Smooth(10 * time.Second)
		for _, p := range sm.Points() {
			if math.Abs(p.V-v) > 1e-9*math.Max(1, math.Abs(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmoothAverages(t *testing.T) {
	s := mk("x", 0, 10, 0, 10, 0)
	sm := s.Smooth(2 * time.Minute)
	// Point at minute 2 averages minutes 1..3: (10+0+10)/3.
	want := 20.0 / 3
	if math.Abs(sm.At(2).V-want) > 1e-12 {
		t.Errorf("Smooth center = %v, want %v", sm.At(2).V, want)
	}
	// Zero window returns values unchanged.
	z := s.Smooth(0)
	for i := range s.Points() {
		if z.At(i).V != s.At(i).V {
			t.Error("zero-window smooth must be identity")
		}
	}
}

func TestSmoothReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New("noise")
	for i := 0; i < 1000; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Second), rng.NormFloat64())
	}
	sm := s.Smooth(60 * time.Second)
	varOf := func(x *Series) float64 {
		m := x.Mean()
		var ss float64
		for _, p := range x.Points() {
			d := p.V - m
			ss += d * d
		}
		return ss / float64(x.Len())
	}
	if varOf(sm) >= varOf(s)/5 {
		t.Errorf("smoothing should cut noise variance: raw %v smooth %v", varOf(s), varOf(sm))
	}
}

func TestSumAligned(t *testing.T) {
	a := mk("a", 1, 1, 1)
	b := mk("b", 2, 2, 2)
	sum, err := SumAligned("total", time.Minute, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Len() != 3 {
		t.Fatalf("len = %d", sum.Len())
	}
	for _, p := range sum.Points() {
		if p.V != 3 {
			t.Errorf("sum point = %v, want 3", p)
		}
	}
}

func TestSumAlignedSampleAndHold(t *testing.T) {
	// b starts one minute later and has a gap; its last value is held.
	a := mk("a", 1, 1, 1, 1)
	b := New("b")
	b.Append(t0.Add(time.Minute), 10)
	sum, err := SumAligned("total", time.Minute, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 11, 11, 11}
	for i, w := range want {
		if sum.At(i).V != w {
			t.Errorf("sum[%d] = %v, want %v", i, sum.At(i).V, w)
		}
	}
}

func TestSumAlignedErrors(t *testing.T) {
	if _, err := SumAligned("x", time.Minute); err == nil {
		t.Error("no series must error")
	}
	if _, err := SumAligned("x", 0, mk("a", 1)); err == nil {
		t.Error("zero step must error")
	}
	empty, err := SumAligned("x", time.Minute, New("e"))
	if err != nil || empty.Len() != 0 {
		t.Errorf("sum of empty series = %v, %v", empty, err)
	}
}

func TestSub(t *testing.T) {
	a := mk("a", 10, 20, 30)
	b := mk("b", 1, 2, 3)
	d, err := Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 18, 27}
	for i, w := range want {
		if d.At(i).V != w {
			t.Errorf("diff[%d] = %v, want %v", i, d.At(i).V, w)
		}
	}
}

func TestSubNoOverlap(t *testing.T) {
	a := mk("a", 1)
	b := New("b")
	b.Append(t0.Add(time.Hour), 5)
	if _, err := Sub(a, b); err != ErrNoOverlap {
		t.Errorf("err = %v, want ErrNoOverlap", err)
	}
	if _, err := Sub(a, New("empty")); err != ErrNoOverlap {
		t.Errorf("err = %v, want ErrNoOverlap for empty b", err)
	}
}

func TestCounterToRate(t *testing.T) {
	s := New("octets")
	s.Append(t0, 1000)
	s.Append(t0.Add(10*time.Second), 2000) // 100/s
	s.Append(t0.Add(20*time.Second), 2000) // 0/s
	r, err := CounterToRate(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.At(0).V != 100 || r.At(1).V != 0 {
		t.Errorf("rates = %v", r.Points())
	}
}

func TestCounterToRateWrap32(t *testing.T) {
	max32 := math.Pow(2, 32)
	s := New("c")
	s.Append(t0, max32-500)
	s.Append(t0.Add(time.Second), 500) // wrapped: delta 1000
	r, err := CounterToRate(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.At(0).V != 1000 {
		t.Errorf("wrap rate = %v", r.Points())
	}
}

func TestCounterToRateReset(t *testing.T) {
	s := New("c")
	s.Append(t0, 1e9)
	s.Append(t0.Add(time.Second), 10) // reset, not a plausible 64-bit wrap
	s.Append(t0.Add(2*time.Second), 20)
	r, err := CounterToRate(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.At(0).V != 10 {
		t.Errorf("after reset = %v", r.Points())
	}
}

func TestCounterToRateBadWidth(t *testing.T) {
	if _, err := CounterToRate(New("c"), 16); err == nil {
		t.Error("width 16 must error")
	}
}

func TestCounterToRateNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New("c")
		c := uint32(rng.Uint64())
		for i := 0; i < 50; i++ {
			s.Append(t0.Add(time.Duration(i)*time.Second), float64(c))
			c += uint32(rng.Intn(1_000_000))
		}
		r, err := CounterToRate(s, 32)
		if err != nil {
			return false
		}
		for _, p := range r.Points() {
			if p.V < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntegratePower(t *testing.T) {
	s := New("p")
	// Constant 100 W for one hour = 100 Wh = 360 kJ.
	for i := 0; i <= 60; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Minute), 100)
	}
	got := IntegratePower(s)
	if math.Abs(got-360000) > 1e-6 {
		t.Errorf("IntegratePower = %v J, want 360000", got)
	}
	// A ramp 0→100 W over one hour averages 50 W.
	r := New("ramp")
	for i := 0; i <= 60; i++ {
		r.Append(t0.Add(time.Duration(i)*time.Minute), float64(i)/60*100)
	}
	if got := IntegratePower(r); math.Abs(got-180000) > 1e-6 {
		t.Errorf("ramp energy = %v J, want 180000", got)
	}
	if IntegratePower(New("empty")) != 0 {
		t.Error("empty series must integrate to 0")
	}
	one := New("one")
	one.Append(t0, 500)
	if IntegratePower(one) != 0 {
		t.Error("single point must integrate to 0")
	}
}

func TestIntegratePowerNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New("p")
		for i := 0; i < 50; i++ {
			s.Append(t0.Add(time.Duration(i)*time.Minute), rng.Float64()*1000)
		}
		return IntegratePower(s) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianCacheInvalidatedByAppend(t *testing.T) {
	s := mk("med", 1, 3, 2)
	if got := s.Median(); got != 2 {
		t.Fatalf("Median = %v, want 2", got)
	}
	// A later Append must invalidate the cached sorted values.
	s.Append(t0.Add(time.Hour), 100)
	if got := s.Median(); got != 2.5 {
		t.Fatalf("Median after Append = %v, want 2.5", got)
	}
	s.Append(t0.Add(2*time.Hour), 200)
	if got := s.Median(); got != 3 {
		t.Fatalf("Median after second Append = %v, want 3", got)
	}
}

func TestMedianDoesNotReorderPoints(t *testing.T) {
	s := mk("order", 5, 1, 9)
	_ = s.Median()
	want := []float64{5, 1, 9}
	for i, p := range s.Points() {
		if p.V != want[i] {
			t.Fatalf("point %d = %v, want %v (Median must not disturb time order)", i, p.V, want[i])
		}
	}
}

func TestQuantile(t *testing.T) {
	s := mk("q", 5, 1, 3, 2, 4)
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := New("empty").Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// The 0.5-quantile and the median agree, through the shared cache.
	if s.Quantile(0.5) != s.Median() {
		t.Error("Quantile(0.5) != Median()")
	}
}
