package trafficgen

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/psu"
	"fantasticjoules/internal/units"
)

var g = units.GigabitPerSecond

func TestIBSendBWRange(t *testing.T) {
	gen := IBSendBW{}
	if _, err := gen.Load(1*g, 1500); err == nil {
		t.Error("1 Gbps is below ib_send_bw's range")
	}
	if _, err := gen.Load(200*g, 1500); err == nil {
		t.Error("200 Gbps is above ib_send_bw's range")
	}
	l, err := gen.Load(100*g, 1500)
	if err != nil {
		t.Fatal(err)
	}
	want := units.PacketRateFor(100*g, 1500, EthernetOverhead)
	if math.Abs(l.Packets.PacketsPerSecond()-want.PacketsPerSecond()) > 1e-6 {
		t.Errorf("packet rate = %v, want %v", l.Packets, want)
	}
}

func TestIPerf3Range(t *testing.T) {
	gen := IPerf3UDP{}
	if _, err := gen.Load(0, 1500); err == nil {
		t.Error("zero rate must error")
	}
	if _, err := gen.Load(10*g, 1500); err == nil {
		t.Error("10 Gbps is above iperf3's useful range here")
	}
	if _, err := gen.Load(1*g, 1500); err != nil {
		t.Errorf("1 Gbps should work: %v", err)
	}
}

func TestPacketSizeLimits(t *testing.T) {
	if _, err := (IBSendBW{}).Load(10*g, 32); err == nil {
		t.Error("sub-64 B packets must error")
	}
	if _, err := (IBSendBW{}).Load(10*g, 10000); err == nil {
		t.Error("super-jumbo packets must error")
	}
}

func TestForRate(t *testing.T) {
	if ForRate(100*g).Name() != "ib_send_bw" {
		t.Error("high rates use ib_send_bw")
	}
	if ForRate(1*g).Name() != "iperf3-udp" {
		t.Error("low rates use iperf3")
	}
}

func snakeRouter(t *testing.T) *device.Router {
	t.Helper()
	curve, _ := psu.NewCurve([]psu.CurvePoint{{Load: 0, Efficiency: 1}, {Load: 1, Efficiency: 1}})
	key := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * g}
	spec := device.ModelSpec{
		Name: "snake-dut", NumPorts: 4, PortType: model.QSFP28,
		Truth: map[model.ProfileKey]model.InterfaceProfile{
			key: {Key: key, PPort: 1, EBit: 10 * units.Picojoule},
		},
		PBaseDC: 100, PSUCount: 1, PSUCapacity: 1000, PSUCurve: curve,
	}
	r, err := device.New(spec, "dut", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.InterfaceNames()[:2] {
		if err := r.PlugTransceiver(name, model.PassiveDAC, 100*g); err != nil {
			t.Fatal(err)
		}
		if err := r.SetAdmin(name, true); err != nil {
			t.Fatal(err)
		}
		if err := r.SetLink(name, true); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestApplySnake(t *testing.T) {
	r := snakeRouter(t)
	load, err := IBSendBW{}.Load(10*g, 1500)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ApplySnake(r, load)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("snake loaded %d interfaces, want the 2 operational ones", n)
	}
	before := r.WallPower().Watts()
	if err := StopSnake(r); err != nil {
		t.Fatal(err)
	}
	after := r.WallPower().Watts()
	if after >= before {
		t.Errorf("stopping the snake must reduce power: %v -> %v", before, after)
	}
}

func TestDiurnalShape(t *testing.T) {
	d := DefaultDiurnal()
	d.Noise = 0
	// Tuesday evening peak vs Tuesday pre-dawn trough.
	peak := d.Multiplier(time.Date(2024, 9, 3, 20, 0, 0, 0, time.UTC), nil)
	trough := d.Multiplier(time.Date(2024, 9, 3, 8, 0, 0, 0, time.UTC), nil)
	if peak <= trough {
		t.Errorf("peak %v must exceed trough %v", peak, trough)
	}
	// Weekend dip: same hour, Saturday vs Tuesday.
	sat := d.Multiplier(time.Date(2024, 9, 7, 20, 0, 0, 0, time.UTC), nil)
	if sat >= peak {
		t.Errorf("saturday %v must be below weekday %v", sat, peak)
	}
}

func TestDiurnalMeanNearOne(t *testing.T) {
	d := DefaultDiurnal()
	d.Noise = 0
	d.WeekendDip = 0
	var sum float64
	n := 0
	start := time.Date(2024, 9, 2, 0, 0, 0, 0, time.UTC)
	for ts := start; ts.Before(start.AddDate(0, 0, 1)); ts = ts.Add(5 * time.Minute) {
		sum += d.Multiplier(ts, nil)
		n++
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Errorf("daily mean multiplier = %v, want ≈1", mean)
	}
}

func TestDiurnalNonNegative(t *testing.T) {
	d := Diurnal{DayAmplitude: 0.9, Noise: 1.5, PeakHour: 12}
	rng := rand.New(rand.NewSource(1))
	ts := time.Date(2024, 9, 2, 3, 0, 0, 0, time.UTC)
	for i := 0; i < 1000; i++ {
		if m := d.Multiplier(ts, rng); m < 0 {
			t.Fatalf("negative multiplier %v", m)
		}
	}
}

func TestIMIX(t *testing.T) {
	mean := IMIXMeanSize()
	if mean < 330 || mean < 300 || mean > 400 {
		t.Errorf("IMIX mean size = %v, want ≈353 B", mean)
	}
	var w float64
	for _, e := range IMIX {
		w += e.Weight
	}
	if math.Abs(w-1) > 1e-9 {
		t.Errorf("IMIX weights sum to %v, want 1", w)
	}
}
