package trafficgen

import (
	"math"
	"time"

	"fantasticjoules/internal/units"
)

// Subscriber demand synthesis for the continental-scale fleet.
//
// The calibrated 107-router network hand-sets every interface's mean load
// from the paper's utilization figures. That does not scale to a 100k-router
// fleet serving millions of subscribers, and it bakes a single network-wide
// diurnal rhythm into every link. At scale the fleet instead synthesizes
// demand bottom-up: each access interface homes a population of subscribers
// drawn from a small set of cohorts, and the per-interface load at time t is
// the closed-form aggregate
//
//	load(t) = Σ_cohort demand[cohort] × multiplier[cohort](t) × noise(t)
//
// where demand[cohort] is the cohort's aggregate mean rate on the interface
// (subscriber count × per-subscriber busy mean) and multiplier[cohort](t)
// is the cohort's diurnal/weekly shape. Aggregating analytically — three
// multiply-adds, never a per-user loop — keeps the fleet replay's LoadAt
// O(1) and allocation-free no matter how many subscribers an interface
// carries; the law of large numbers justifies it (an interface aggregates
// hundreds to thousands of users, so the sum concentrates on its mean and
// residual variation is folded into the simulation's per-step noise term).

// Cohort indexes the subscriber populations the demand synthesis
// distinguishes. The three shapes cover the traffic mixes an ISP
// aggregates: evening-peaked residential eyeballs, business-hours
// enterprise links, and the flatter wholesale/peering aggregate.
type Cohort int

// The subscriber cohorts. NumCohorts sizes the per-interface demand
// vectors carried by the fleet topology.
const (
	// Residential subscribers: evening peak, slight weekend boost.
	Residential Cohort = iota
	// Business subscribers: mid-afternoon peak, strong weekend dip.
	Business
	// Wholesale is the aggregate of transit/peering and locally attached
	// infrastructure — flatter than either access cohort.
	Wholesale

	NumCohorts = 3
)

// CohortProfile describes one cohort: the per-subscriber busy-period mean
// rate and the diurnal/weekly shape of the cohort aggregate.
type CohortProfile struct {
	// Name labels the cohort in reports.
	Name string
	// MeanDemand is the long-term mean bidirectional rate one subscriber
	// contributes to its access interface, in bit/s. Busy-hour demand is
	// MeanDemand scaled by the cohort multiplier's peak.
	MeanDemand units.BitRate
	// DayAmplitude, WeekendDip, and PeakHour shape the cohort multiplier
	// exactly as in Diurnal: a cosine day cycle peaking at PeakHour with
	// ±DayAmplitude swing, scaled by 1-WeekendDip on Saturday and Sunday.
	// A negative WeekendDip models a weekend boost.
	DayAmplitude float64
	WeekendDip   float64
	PeakHour     float64
}

// cohortProfiles is the fixed cohort table; indexed by Cohort.
var cohortProfiles = [NumCohorts]CohortProfile{
	Residential: {Name: "residential", MeanDemand: 2.5e6, DayAmplitude: 0.50, WeekendDip: -0.10, PeakHour: 21},
	Business:    {Name: "business", MeanDemand: 8e6, DayAmplitude: 0.60, WeekendDip: 0.55, PeakHour: 14},
	Wholesale:   {Name: "wholesale", MeanDemand: 0, DayAmplitude: 0.35, WeekendDip: 0.20, PeakHour: 19},
}

// Cohorts returns the cohort table, indexed by Cohort.
func Cohorts() [NumCohorts]CohortProfile {
	return cohortProfiles
}

// CohortMultipliers fills out with every cohort's demand multiplier at
// time t. The multipliers are deterministic, non-negative, and average ≈1
// over a week, so a cohort's mean demand is also its mean offered load.
// The fleet replay hoists this to once per step per router shard: the
// per-interface hot path is then a NumCohorts-term dot product.
//
//joules:hotpath
func CohortMultipliers(t time.Time, out *[NumCohorts]float64) {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	wd := t.Weekday()
	weekend := wd == time.Saturday || wd == time.Sunday
	for i := range cohortProfiles {
		p := &cohortProfiles[i]
		m := 1 + p.DayAmplitude*math.Cos(2*math.Pi*(hour-p.PeakHour)/24)
		if weekend {
			m *= 1 - p.WeekendDip
		}
		if m < 0 {
			m = 0
		}
		out[i] = m
	}
}

// residentialShare is the fraction of an access interface's target mean
// load carried by residential subscribers; the rest is business. The
// 85/15 split matches the eyeball-heavy mix of the studied network.
const residentialShare = 0.85

// SubscribersFor synthesizes the subscriber population of one access
// interface from its target mean load: how many residential and business
// subscribers it homes, and the resulting per-cohort aggregate mean demand
// in bit/s. Counts are whole subscribers (the quantization means the
// realized mean tracks, but does not exactly equal, the target — as in any
// real deployment); an interface with a positive target homes at least one
// residential subscriber. The synthesis is closed-form and deterministic:
// equal targets give equal populations.
func SubscribersFor(target units.BitRate) (counts [NumCohorts]int, demand [NumCohorts]float64) {
	bits := target.BitsPerSecond()
	if bits <= 0 {
		return counts, demand
	}
	res := int(math.Round(bits * residentialShare / cohortProfiles[Residential].MeanDemand.BitsPerSecond()))
	if res < 1 {
		res = 1
	}
	biz := int(math.Round(bits * (1 - residentialShare) / cohortProfiles[Business].MeanDemand.BitsPerSecond()))
	counts[Residential] = res
	counts[Business] = biz
	demand[Residential] = float64(res) * cohortProfiles[Residential].MeanDemand.BitsPerSecond()
	demand[Business] = float64(biz) * cohortProfiles[Business].MeanDemand.BitsPerSecond()
	return counts, demand
}
