package trafficgen

import (
	"math"
	"testing"
	"time"
)

// TestCohortMultipliersWeeklyMean checks every cohort multiplier averages
// ≈1 over a full week at a 5-minute grid, so cohort mean demand is also
// mean offered load.
func TestCohortMultipliersWeeklyMean(t *testing.T) {
	start := time.Date(2024, 9, 2, 0, 0, 0, 0, time.UTC) // a Monday
	var sum [NumCohorts]float64
	var cm [NumCohorts]float64
	n := 0
	for ts := start; ts.Before(start.Add(7 * 24 * time.Hour)); ts = ts.Add(5 * time.Minute) {
		CohortMultipliers(ts, &cm)
		for i, m := range cm {
			if m < 0 {
				t.Fatalf("cohort %d multiplier %v < 0 at %v", i, m, ts)
			}
			sum[i] += m
		}
		n++
	}
	for i, p := range Cohorts() {
		mean := sum[i] / float64(n)
		// The weekend scaling pulls the mean off 1 by 2/7 of the dip.
		want := 1 - 2.0/7.0*p.WeekendDip
		if math.Abs(mean-want) > 0.02 {
			t.Errorf("cohort %s weekly mean %.3f, want ≈%.3f", p.Name, mean, want)
		}
	}
}

// TestCohortMultipliersShapes pins the qualitative cohort shapes: business
// traffic peaks in working hours and collapses on weekends, residential
// peaks in the evening and does not.
func TestCohortMultipliersShapes(t *testing.T) {
	var noon2pm, evening, satNoon [NumCohorts]float64
	tue := time.Date(2024, 9, 3, 0, 0, 0, 0, time.UTC)
	CohortMultipliers(tue.Add(14*time.Hour), &noon2pm)
	CohortMultipliers(tue.Add(21*time.Hour), &evening)
	CohortMultipliers(tue.AddDate(0, 0, 4).Add(14*time.Hour), &satNoon) // Saturday
	if noon2pm[Business] <= evening[Business] {
		t.Errorf("business should peak mid-afternoon: 14h %.3f vs 21h %.3f", noon2pm[Business], evening[Business])
	}
	if evening[Residential] <= noon2pm[Residential] {
		t.Errorf("residential should peak in the evening: 21h %.3f vs 14h %.3f", evening[Residential], noon2pm[Residential])
	}
	if satNoon[Business] >= 0.6*noon2pm[Business] {
		t.Errorf("business weekend dip missing: sat %.3f vs tue %.3f", satNoon[Business], noon2pm[Business])
	}
	if satNoon[Residential] <= noon2pm[Residential] {
		t.Errorf("residential weekend boost missing: sat %.3f vs tue %.3f", satNoon[Residential], noon2pm[Residential])
	}
}

// TestSubscribersFor checks the closed-form population synthesis: the
// realized aggregate demand tracks the target, the 85/15 cohort split
// holds, tiny targets still home one subscriber, and equal targets give
// identical populations.
func TestSubscribersFor(t *testing.T) {
	counts, demand := SubscribersFor(800e6) // a 10G access port at 8%
	if counts[Residential] < 200 || counts[Business] < 5 {
		t.Fatalf("implausible population for 800 Mb/s: %+v", counts)
	}
	if counts[Wholesale] != 0 || demand[Wholesale] != 0 {
		t.Fatalf("access synthesis must not produce wholesale demand: %+v %+v", counts, demand)
	}
	total := demand[Residential] + demand[Business]
	if math.Abs(total-800e6) > 0.02*800e6 {
		t.Errorf("realized demand %.0f strays from the 800e6 target", total)
	}
	if share := demand[Residential] / total; math.Abs(share-residentialShare) > 0.05 {
		t.Errorf("residential share %.3f, want ≈%.2f", share, residentialShare)
	}

	c2, d2 := SubscribersFor(800e6)
	if c2 != counts || d2 != demand {
		t.Errorf("SubscribersFor is not deterministic: %+v vs %+v", d2, demand)
	}

	small, _ := SubscribersFor(1e3)
	if small[Residential] != 1 {
		t.Errorf("a positive target must home ≥1 residential subscriber, got %d", small[Residential])
	}
	zero, zd := SubscribersFor(0)
	if zero != ([NumCohorts]int{}) || zd != ([NumCohorts]float64{}) {
		t.Errorf("zero target must synthesize nothing: %+v %+v", zero, zd)
	}
}
