// Package trafficgen generates the traffic loads used by the lab
// methodology and the fleet simulation.
//
// In the paper's lab (§5.1), an Intel NUC with a ConnectX-6 NIC generates
// up to 100 Gbps with ib_send_bw and the low rates with iPerf3/UDP; the
// DUT forwards the flow through every interface as a layer-2 snake
// (RFC 8239). This package reproduces the load shapes those tools offer:
// fixed-size packets at a requested bit rate, with each generator's rate
// granularity and limits.
package trafficgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fantasticjoules/internal/device"
	"fantasticjoules/internal/units"
)

// EthernetOverhead is the per-packet framing overhead on the wire:
// preamble (8 B), FCS (4 B), and minimum inter-packet gap (12 B). The
// physical-layer bit rate of Eq. (12) includes it.
const EthernetOverhead units.ByteSize = 24

// Load is an offered traffic load on one interface: bit and packet rates,
// both bidirectional sums, plus the packet size that produced them.
type Load struct {
	Bits       units.BitRate
	Packets    units.PacketRate
	PacketSize units.ByteSize
}

// Generator produces loads at requested rates, within the limits of the
// emulated tool.
type Generator interface {
	// Name identifies the tool, e.g. "ib_send_bw".
	Name() string
	// Load returns the offered load for a target physical-layer bit rate
	// and packet size, or an error if the tool cannot produce it.
	Load(rate units.BitRate, packetSize units.ByteSize) (Load, error)
}

// IBSendBW emulates the InfiniBand bandwidth tester used for rates from
// 2.5 to 100 Gbps.
type IBSendBW struct{}

// Name implements Generator.
func (IBSendBW) Name() string { return "ib_send_bw" }

// Load implements Generator.
func (IBSendBW) Load(rate units.BitRate, packetSize units.ByteSize) (Load, error) {
	const min, max = 2.5e9, 100e9
	if rate.BitsPerSecond() < min || rate.BitsPerSecond() > max {
		return Load{}, fmt.Errorf("trafficgen: ib_send_bw covers 2.5–100 Gbps, not %v", rate)
	}
	return fixedSizeLoad(rate, packetSize)
}

// IPerf3UDP emulates iPerf3 in UDP mode, used for the rates below
// 2.5 Gbps.
type IPerf3UDP struct{}

// Name implements Generator.
func (IPerf3UDP) Name() string { return "iperf3-udp" }

// Load implements Generator.
func (IPerf3UDP) Load(rate units.BitRate, packetSize units.ByteSize) (Load, error) {
	const max = 2.5e9
	if rate.BitsPerSecond() <= 0 || rate.BitsPerSecond() > max {
		return Load{}, fmt.Errorf("trafficgen: iperf3 covers (0, 2.5] Gbps, not %v", rate)
	}
	return fixedSizeLoad(rate, packetSize)
}

func fixedSizeLoad(rate units.BitRate, packetSize units.ByteSize) (Load, error) {
	if packetSize < 64 || packetSize > 9216 {
		return Load{}, fmt.Errorf("trafficgen: packet size %v outside [64, 9216] B", packetSize)
	}
	return Load{
		Bits:       rate,
		Packets:    units.PacketRateFor(rate, packetSize, EthernetOverhead),
		PacketSize: packetSize,
	}, nil
}

// ForRate picks the right lab generator for a rate, as the paper does:
// ib_send_bw from 2.5 Gbps up, iPerf3/UDP below.
func ForRate(rate units.BitRate) Generator {
	if rate.BitsPerSecond() >= 2.5e9 {
		return IBSendBW{}
	}
	return IPerf3UDP{}
}

// ApplySnake configures a layer-2 snake (RFC 8239) on the router: the test
// flow enters the first operational interface, is looped through every
// other one, and returns to the generator. Each interface therefore
// carries the flow once in each direction, i.e. a bidirectional rate sum
// equal to the offered rate. It returns the number of interfaces loaded.
func ApplySnake(r *device.Router, load Load) (int, error) {
	names, handles, err := resolveHandles(r)
	if err != nil {
		return 0, err
	}
	n := 0
	step := r.BeginStep()
	defer step.End()
	for i, h := range handles {
		if _, _, operUp := step.InterfaceState(h); !operUp {
			continue
		}
		if err := step.SetTraffic(h, load.Bits, load.Packets); err != nil {
			return n, fmt.Errorf("trafficgen: snake on %s: %w", names[i], err)
		}
		n++
	}
	return n, nil
}

// StopSnake removes the snake load from every operational interface.
func StopSnake(r *device.Router) error {
	names, handles, err := resolveHandles(r)
	if err != nil {
		return err
	}
	step := r.BeginStep()
	defer step.End()
	for i, h := range handles {
		if _, _, operUp := step.InterfaceState(h); !operUp {
			continue
		}
		if err := step.SetTraffic(h, 0, 0); err != nil {
			return fmt.Errorf("trafficgen: unload %s: %w", names[i], err)
		}
	}
	return nil
}

// resolveHandles resolves every interface once, ahead of a batch step —
// Handle locks the router, so it must run before BeginStep.
func resolveHandles(r *device.Router) ([]string, []device.Handle, error) {
	names := r.InterfaceNames()
	handles := make([]device.Handle, len(names))
	for i, name := range names {
		h, err := r.Handle(name)
		if err != nil {
			return nil, nil, err
		}
		handles[i] = h
	}
	return names, handles, nil
}

// Diurnal models the daily and weekly traffic rhythm of an ISP network:
// a baseline with a sinusoidal day cycle peaking in the evening, a weekend
// dip, and multiplicative flow noise. It produces the utilization
// multiplier applied to a link's mean traffic.
//
// A Diurnal is an immutable value: Multiplier reads only its fields and
// the rng passed in (nil for the deterministic pattern), so one Diurnal
// may be shared by any number of goroutines — the fleet simulation calls
// it from every router shard concurrently with a nil rng.
type Diurnal struct {
	// DayAmplitude scales the day/night swing (0 = flat, 0.5 = ±50 %).
	DayAmplitude float64
	// WeekendDip is the relative reduction applied on Saturday and Sunday.
	WeekendDip float64
	// Noise is the stddev of multiplicative per-sample noise.
	Noise float64
	// PeakHour is the local hour of maximum traffic.
	PeakHour float64
}

// DefaultDiurnal returns the pattern used for the synthetic Switch
// network: academic-network style with a 20:00 peak, ±45 % day swing and a
// 30 % weekend dip.
func DefaultDiurnal() Diurnal {
	return Diurnal{DayAmplitude: 0.45, WeekendDip: 0.30, Noise: 0.05, PeakHour: 20}
}

// Multiplier returns the traffic multiplier at time t using rng for the
// noise term. It is always non-negative; with zero noise its mean over a
// week is ≈1.
//
//joules:hotpath
func (d Diurnal) Multiplier(t time.Time, rng *rand.Rand) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	phase := 2 * math.Pi * (hour - d.PeakHour) / 24
	m := 1 + d.DayAmplitude*math.Cos(phase)
	switch t.Weekday() {
	case time.Saturday, time.Sunday:
		m *= 1 - d.WeekendDip
	}
	if d.Noise > 0 && rng != nil {
		m *= 1 + rng.NormFloat64()*d.Noise
	}
	if m < 0 {
		m = 0
	}
	return m
}

// IMIX returns the classic Internet packet-size mix as (size, weight)
// pairs; the weighted mean is ≈ 353 B. The fleet simulator uses it to
// derive packet rates from byte counts.
var IMIX = []struct {
	Size   units.ByteSize
	Weight float64
}{
	{64, 7.0 / 12},
	{594, 4.0 / 12},
	{1518, 1.0 / 12},
}

// IMIXMeanSize returns the weighted mean IMIX packet size.
func IMIXMeanSize() units.ByteSize {
	var s, w float64
	for _, e := range IMIX {
		s += e.Size.Bytes() * e.Weight
		w += e.Weight
	}
	return units.ByteSize(s / w)
}
