package fantasticjoules

// Benchmarks regenerating every table and figure of the paper plus the
// design-choice ablations DESIGN.md calls out. Each benchmark reports the
// time to (re)compute one artifact; the shared suite caches the expensive
// substrates (the fleet simulation and the lab derivations) after the
// first run, so steady-state numbers measure the analysis itself. Run
// with:
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured values.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"fantasticjoules/internal/experiments"
	"fantasticjoules/internal/hypnos"
	"fantasticjoules/internal/ispnet"
	"fantasticjoules/internal/model"
	"fantasticjoules/internal/stats"
	"fantasticjoules/internal/units"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() { benchSuite = experiments.New(42) })
	return benchSuite
}

func BenchmarkFig1NetworkPowerTraffic(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2aASICTrend(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if pts := s.Fig2a(); len(pts) == 0 {
			b.Fatal("empty trend")
		}
	}
}

func BenchmarkFig2bDatasheetTrend(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DatasheetAccuracy(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ModelDerivation(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6AdditionalModels(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Validation(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9OffsetCorrected(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5EfficiencyCurve(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if res := s.Fig5(); len(res.PFE600) == 0 {
			b.Fatal("empty curve")
		}
	}
}

func BenchmarkFig6PSUScatter(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3PSUSavings(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4RightSizing(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5PortTypePower(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if rows := s.Table5(); len(rows) != 4 {
			b.Fatal("bad table5")
		}
	}
}

func BenchmarkFig8OSUpgrade(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection7Insights(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Section7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection8LinkSleeping(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Section8(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationDynamicTerms(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationDynamicTerms(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSmoothing(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationSmoothing(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSweepDensity(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationSweepDensity(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Incremental recomputation (DESIGN.md §11) ---

// BenchmarkFig1Incremental times the perturb-and-remeasure loop the
// incremental path exists for: scale one router's offered load, then
// re-request Fig. 1. Only the dirty router's shard replays and only the
// artifacts downstream of the dataset recompute — compare against
// BenchmarkFig1NetworkPowerTraffic's cold first iteration. A dedicated
// suite keeps the perturbations out of the shared benchmark suite.
func BenchmarkFig1Incremental(b *testing.B) {
	s := experiments.New(42)
	if _, err := s.Fig1(); err != nil {
		b.Fatal(err)
	}
	ds, err := s.Dataset()
	if err != nil {
		b.Fatal(err)
	}
	router := ds.Network.AutopowerRouters()[0].Name
	at := ds.Network.Config.Start.Add(21 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate scale-up and the exact inverse so the merged schedule
		// stays bounded while each iteration dirties exactly one router.
		factor := 1.5
		if i%2 == 1 {
			factor = 1 / 1.5
		}
		if err := s.Perturb(ispnet.FleetEvent{
			At: at, Router: router, Op: ispnet.OpScaleLoad, Factor: factor,
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResimulatePerturbed times the fleet layer alone: Perturb +
// Resimulate with 1 and 10 dirty routers out of the calibrated fleet at
// the suite's dataset resolution, plus 1 dirty router out of a generated
// 1k-router hierarchical fleet (the chunk-retained path, at the
// optimize-scale artifact's hourly resolution). The replay cost should
// scale with the dirty count, not the fleet size.
func BenchmarkResimulatePerturbed(b *testing.B) {
	cases := []struct {
		name string
		cfg  ispnet.Config
		// dirty routers perturbed per iteration.
		dirty int
	}{
		{"routers=1", ispnet.Config{
			Seed:          42,
			SNMPStep:      15 * time.Minute,
			AutopowerStep: 5 * time.Minute,
		}, 1},
		{"routers=10", ispnet.Config{
			Seed:          42,
			SNMPStep:      15 * time.Minute,
			AutopowerStep: 5 * time.Minute,
		}, 10},
		{"routers=1k", ispnet.Config{
			Seed:     42,
			Routers:  1000,
			Duration: 7 * 24 * time.Hour,
			SNMPStep: time.Hour,
		}, 1},
	}
	for _, tc := range cases {
		dirty := tc.dirty
		b.Run(tc.name, func(b *testing.B) {
			f, err := ispnet.NewFleet(tc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			routers := f.Network().Routers
			if dirty > len(routers) {
				b.Fatalf("fleet has %d routers, need %d", len(routers), dirty)
			}
			at := f.Network().Config.Start.Add(f.Network().Config.Duration / 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				factor := 1.5
				if i%2 == 1 {
					factor = 1 / 1.5
				}
				evs := make([]ispnet.FleetEvent, dirty)
				for j := 0; j < dirty; j++ {
					evs[j] = ispnet.FleetEvent{
						At: at, Router: routers[j].Name, Op: ispnet.OpScaleLoad, Factor: factor,
					}
				}
				if err := f.Perturb(evs...); err != nil {
					b.Fatal(err)
				}
				if _, err := f.Resimulate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizerStep times one closed-loop control step at the
// optimizer's granularity: the greedy decision plus SLA guardrail
// (hypnos.Planner.PlanStep over the full 169-link backbone) followed by
// actuating a one-link perturbation through the incremental fleet path
// (Perturb + Resimulate of the two endpoint routers). This is the cost
// the online controller pays per hour of simulated time when one link
// changes state; steps that decide "no change" skip the resimulate and
// cost only the PlanStep part.
func BenchmarkOptimizerStep(b *testing.B) {
	cfg := ispnet.Config{
		Seed:          42,
		SNMPStep:      15 * time.Minute,
		AutopowerStep: 5 * time.Minute,
	}
	f, err := ispnet.NewFleet(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pristine, err := ispnet.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	topo, traffic, err := hypnos.FromNetwork(pristine)
	if err != nil {
		b.Fatal(err)
	}
	planner, err := hypnos.NewPlanner(topo, hypnos.PlannerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	at := f.Network().Config.Start.Add(21 * 24 * time.Hour)
	loads := make([]float64, len(topo.Links))
	for i, l := range topo.Links {
		loads[i] = traffic(l.ID, at).BitsPerSecond()
	}
	// One settling step: the first PlanStep on an idle backbone makes ~60
	// sleep decisions; steady-state steps mostly revalidate.
	planner.PlanStep(loads, nil)
	link := topo.Links[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		planner.PlanStep(loads, nil) // decision + guardrail
		// Alternate sleep and wake of one link so each iteration is a
		// 1-action perturbation dirtying exactly the two endpoint routers.
		op := ispnet.OpSleep
		if i%2 == 1 {
			op = ispnet.OpWake
		}
		if err := f.Perturb(
			ispnet.FleetEvent{At: at, Router: link.A.Router, Op: op, Iface: link.A.Interface},
			ispnet.FleetEvent{At: at, Router: link.B.Router, Op: op, Iface: link.B.Interface},
		); err != nil {
			b.Fatal(err)
		}
		if _, err := f.Resimulate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerStep1k is BenchmarkOptimizerStep on a generated
// 1k-router hierarchical fleet: the PlanStep decision covers ~1.5k
// links and the actuation resimulates two dirty routers through the
// chunk-retained path (decode-splice of the other ~998 routers' columns
// included). This is the per-step cost of `joules -optimize -routers
// 1000`.
func BenchmarkOptimizerStep1k(b *testing.B) {
	cfg := ispnet.Config{
		Seed:     42,
		Routers:  1000,
		Duration: 7 * 24 * time.Hour,
		SNMPStep: time.Hour,
	}
	f, err := ispnet.NewFleet(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pristine, err := ispnet.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	topo, traffic, err := hypnos.FromNetwork(pristine)
	if err != nil {
		b.Fatal(err)
	}
	planner, err := hypnos.NewPlanner(topo, hypnos.PlannerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	at := f.Network().Config.Start.Add(f.Network().Config.Duration / 3)
	loads := make([]float64, len(topo.Links))
	for i, l := range topo.Links {
		loads[i] = traffic(l.ID, at).BitsPerSecond()
	}
	planner.PlanStep(loads, nil)
	link := topo.Links[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		planner.PlanStep(loads, nil)
		op := ispnet.OpSleep
		if i%2 == 1 {
			op = ispnet.OpWake
		}
		if err := f.Perturb(
			ispnet.FleetEvent{At: at, Router: link.A.Router, Op: op, Iface: link.A.Interface},
			ispnet.FleetEvent{At: at, Router: link.B.Router, Op: op, Iface: link.B.Interface},
		); err != nil {
			b.Fatal(err)
		}
		if _, err := f.Resimulate(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core operation microbenchmarks ---

func BenchmarkModelPredict(b *testing.B) {
	m, err := PublishedModel("NCS-55A1-24H")
	if err != nil {
		b.Fatal(err)
	}
	key := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * units.GigabitPerSecond}
	cfg := model.Config{}
	for i := 0; i < 24; i++ {
		cfg.Interfaces = append(cfg.Interfaces, model.Interface{
			Profile: key, TransceiverPresent: true, AdminUp: true, OperUp: true,
			Bits: 10 * units.GigabitPerSecond, Packets: 1e6,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictPower(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelPredictParallel drives PredictPower from GOMAXPROCS
// goroutines against one shared model — the read path a concurrent
// monitoring service exercises. A fully assembled Model is immutable, so
// the benchmark also acts as a race check when run with -race.
//
// The workers are spawned (and parked on a start channel) before the
// timer resets. The earlier b.RunParallel version reported 720 B / 8
// allocs per op at -benchtime=1x: that was RunParallel's own pool setup —
// the testing.PB bookkeeping and worker goroutines it allocates inside
// the timed region — divided by N=1, not an allocation in PredictPower
// (which is 0-alloc at any serial benchtime). Pre-spawning keeps the
// measured region to pure PredictPower calls, so the parallel benchmark
// reports 0 allocs/op like the serial one at every benchtime.
func BenchmarkModelPredictParallel(b *testing.B) {
	m, err := PublishedModel("NCS-55A1-24H")
	if err != nil {
		b.Fatal(err)
	}
	key := model.ProfileKey{Port: model.QSFP28, Transceiver: model.PassiveDAC, Speed: 100 * units.GigabitPerSecond}
	cfg := model.Config{}
	for i := 0; i < 24; i++ {
		cfg.Interfaces = append(cfg.Interfaces, model.Interface{
			Profile: key, TransceiverPresent: true, AdminUp: true, OperUp: true,
			Bits: 10 * units.GigabitPerSecond, Packets: 1e6,
		})
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > b.N {
		workers = b.N
	}
	errs := make([]error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	per, extra := b.N/workers, b.N%workers
	share := func(w int) int {
		n := per
		if w < extra {
			n++
		}
		return n
	}
	// Worker 0 is the benchmark goroutine itself: with one worker the
	// timed region then contains no parking at all (a blocked wg.Wait can
	// allocate its semaphore record inside the measurement).
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < share(w); i++ {
				if _, err := m.PredictPower(cfg); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	b.ResetTimer()
	close(start)
	for i := 0; i < share(0); i++ {
		if _, err := m.PredictPower(cfg); err != nil {
			errs[0] = err
			break
		}
	}
	wg.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearRegression(b *testing.B) {
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*xs[i] + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.LinearRegression(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelDerivationEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := DeriveModel("Wedge100BF-32X", model.PassiveDAC, 100*units.GigabitPerSecond, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Model.PBase <= 0 {
			b.Fatal("bad derivation")
		}
	}
}

func BenchmarkAblationHypnosThreshold(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationHypnosThreshold(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinesComparison(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Baselines(); err != nil {
			b.Fatal(err)
		}
	}
}
