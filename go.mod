module fantasticjoules

go 1.22
